// Package wsock is a minimal WebSocket (RFC 6455) implementation covering
// what a BGP streaming feed needs: the HTTP/1.1 upgrade handshake (server
// and client side), text and binary data frames, fragmentation, ping/pong,
// and close. It exists because the reproduced RIS Live feed
// (internal/feeds/ris) streams JSON over WebSocket, and the module is
// stdlib-only.
//
// Frames from the client are masked as the RFC requires; server frames are
// not. Control frames interleaved with fragmented messages are handled.
package wsock

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
)

// magicGUID is the fixed GUID from RFC 6455 §1.3 used in the accept hash.
const magicGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Opcodes (RFC 6455 §5.2).
const (
	opContinuation = 0x0
	OpText         = 0x1
	OpBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// maxMessageLen bounds a reassembled message; feed events are tiny, so a
// generous 4 MiB cap protects against a corrupt or hostile length field.
const maxMessageLen = 4 << 20

// ErrClosed is returned by Read/Write after the connection is closed,
// locally or by the peer.
var ErrClosed = errors.New("wsock: connection closed")

// Conn is an established WebSocket connection. It is safe for one
// concurrent reader plus one concurrent writer.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // true when we are the client (must mask writes)

	wmu    sync.Mutex
	closed bool
}

// AcceptKey computes the Sec-WebSocket-Accept value for a handshake key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + magicGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Upgrade performs the server side of the WebSocket handshake on an HTTP
// request, hijacking the underlying TCP connection.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") ||
		!headerContainsToken(r.Header.Get("Connection"), "upgrade") {
		http.Error(w, "not a websocket handshake", http.StatusBadRequest)
		return nil, fmt.Errorf("wsock: not a websocket handshake")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, fmt.Errorf("wsock: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "hijacking unsupported", http.StatusInternalServerError)
		return nil, fmt.Errorf("wsock: response writer does not support hijacking")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("wsock: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close()
		return nil, err
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return &Conn{conn: conn, br: rw.Reader, client: false}, nil
}

func headerContainsToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// Dial connects to a ws:// URL (host:port with path) and performs the
// client handshake.
func Dial(url string) (*Conn, error) {
	rest, ok := strings.CutPrefix(url, "ws://")
	if !ok {
		return nil, fmt.Errorf("wsock: only ws:// URLs supported, got %q", url)
	}
	host, path := rest, "/"
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		host, path = rest[:i], rest[i:]
	}
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	return ClientHandshake(conn, host, path)
}

// ClientHandshake performs the client side of the handshake over an
// existing connection.
func ClientHandshake(conn net.Conn, host, path string) (*Conn, error) {
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n", path, host, key)
	if _, err := io.WriteString(conn, req); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !strings.Contains(status, "101") {
		conn.Close()
		return nil, fmt.Errorf("wsock: handshake rejected: %s", strings.TrimSpace(status))
	}
	var accept string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Sec-WebSocket-Accept") {
			accept = strings.TrimSpace(v)
		}
	}
	if accept != AcceptKey(key) {
		conn.Close()
		return nil, fmt.Errorf("wsock: bad Sec-WebSocket-Accept")
	}
	return &Conn{conn: conn, br: br, client: true}, nil
}

// WriteMessage sends one complete message with the given opcode (OpText or
// OpBinary).
func (c *Conn) WriteMessage(opcode byte, payload []byte) error {
	return c.writeFrame(opcode, payload, true)
}

func (c *Conn) writeFrame(opcode byte, payload []byte, fin bool) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return ErrClosed
	}
	var hdr [14]byte
	b0 := opcode
	if fin {
		b0 |= 0x80
	}
	hdr[0] = b0
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) <= 0xffff:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(payload)))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		copy(hdr[n:], mask[:])
		n += 4
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ mask[i%4]
		}
		payload = masked
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

// ReadMessage reads the next complete data message, transparently handling
// fragmentation and responding to pings. It returns the opcode (OpText or
// OpBinary) and the reassembled payload. When the peer sends a close frame
// the method echoes it and returns ErrClosed.
func (c *Conn) ReadMessage() (byte, []byte, error) {
	var (
		msgOp  byte
		buf    []byte
		inFrag bool
	)
	for {
		fin, op, payload, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case opPing:
			if err := c.writeFrame(opPong, payload, true); err != nil {
				return 0, nil, err
			}
		case opPong:
			// unsolicited pong: ignore
		case opClose:
			c.writeFrame(opClose, payload, true)
			c.Close()
			return 0, nil, ErrClosed
		case OpText, OpBinary:
			if inFrag {
				return 0, nil, fmt.Errorf("wsock: new data frame inside fragmented message")
			}
			if fin {
				return op, payload, nil
			}
			msgOp, buf, inFrag = op, append([]byte(nil), payload...), true
		case opContinuation:
			if !inFrag {
				return 0, nil, fmt.Errorf("wsock: continuation without start frame")
			}
			if len(buf)+len(payload) > maxMessageLen {
				return 0, nil, fmt.Errorf("wsock: message exceeds %d bytes", maxMessageLen)
			}
			buf = append(buf, payload...)
			if fin {
				return msgOp, buf, nil
			}
		default:
			return 0, nil, fmt.Errorf("wsock: unknown opcode %#x", op)
		}
	}
}

func (c *Conn) readFrame() (fin bool, op byte, payload []byte, err error) {
	var h [2]byte
	if _, err = io.ReadFull(c.br, h[:]); err != nil {
		return false, 0, nil, err
	}
	fin = h[0]&0x80 != 0
	if h[0]&0x70 != 0 {
		return false, 0, nil, fmt.Errorf("wsock: nonzero reserved bits")
	}
	op = h[0] & 0x0f
	masked := h[1]&0x80 != 0
	length := uint64(h[1] & 0x7f)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > maxMessageLen {
		return false, 0, nil, fmt.Errorf("wsock: frame length %d exceeds cap", length)
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return fin, op, payload, nil
}

// Ping sends a ping frame with the given payload (max 125 bytes).
func (c *Conn) Ping(payload []byte) error {
	if len(payload) > 125 {
		return fmt.Errorf("wsock: control payload too long")
	}
	return c.writeFrame(opPing, payload, true)
}

// Close sends a close frame (best effort) and closes the connection.
// It is idempotent.
func (c *Conn) Close() error {
	c.wmu.Lock()
	if c.closed {
		c.wmu.Unlock()
		return nil
	}
	c.closed = true
	c.wmu.Unlock()
	// Best-effort close frame; ignore errors, the TCP close is what counts.
	hdr := []byte{0x80 | opClose, 0}
	if c.client {
		hdr[1] = 0x80
		hdr = append(hdr, 0, 0, 0, 0)
	}
	c.conn.Write(hdr)
	return c.conn.Close()
}
