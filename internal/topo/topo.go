// Package topo models AS-level Internet topology: autonomous systems,
// business relationships between them (customer–provider and settlement-free
// peering, per Gao–Rexford), per-link propagation delays, and geographic
// placement for the demo visualization.
//
// The paper evaluates against the live Internet; here a synthetic Internet
// with the same hierarchical structure (tier-1 clique, transit providers,
// stub edge networks) stands in for it. Hijack propagation and the
// effectiveness of de-aggregation depend on this structure, not on the
// identity of real ASes, so the substitution preserves the phenomena the
// experiments measure.
package topo

import (
	"fmt"
	"sort"
	"time"

	"artemis/internal/bgp"
)

// Rel is the business relationship of a neighbor *relative to the local AS*.
type Rel int8

const (
	// Customer: the neighbor pays us for transit.
	Customer Rel = -1
	// Peer: settlement-free peering.
	Peer Rel = 0
	// Provider: we pay the neighbor for transit.
	Provider Rel = 1
)

func (r Rel) String() string {
	switch r {
	case Customer:
		return "customer"
	case Peer:
		return "peer"
	case Provider:
		return "provider"
	}
	return fmt.Sprintf("Rel(%d)", int8(r))
}

// Invert returns the relationship as seen from the other side of the link.
func (r Rel) Invert() Rel { return -r }

// Neighbor is one adjacency of an AS.
type Neighbor struct {
	ASN   bgp.ASN
	Rel   Rel           // what the neighbor is to us
	Delay time.Duration // one-way link propagation delay
}

// GeoPoint places an AS on the globe for the demo visualization.
type GeoPoint struct {
	Lat, Lon float64
	Region   string
}

// Topology is an undirected AS graph with typed edges. The zero value is
// not usable; call New.
type Topology struct {
	adj map[bgp.ASN][]Neighbor
	geo map[bgp.ASN]GeoPoint
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{adj: make(map[bgp.ASN][]Neighbor), geo: make(map[bgp.ASN]GeoPoint)}
}

// AddAS registers an AS with no links. Adding links registers endpoints
// implicitly; AddAS is for isolated nodes in tests.
func (t *Topology) AddAS(asn bgp.ASN) {
	if _, ok := t.adj[asn]; !ok {
		t.adj[asn] = nil
	}
}

// AddC2P adds a customer→provider link with the given one-way delay.
func (t *Topology) AddC2P(customer, provider bgp.ASN, delay time.Duration) error {
	return t.addLink(customer, provider, Provider, delay)
}

// AddPeering adds a settlement-free peering link.
func (t *Topology) AddPeering(a, b bgp.ASN, delay time.Duration) error {
	return t.addLink(a, b, Peer, delay)
}

// addLink records the edge on both sides; relAB is what b is to a.
func (t *Topology) addLink(a, b bgp.ASN, relAB Rel, delay time.Duration) error {
	if a == b {
		return fmt.Errorf("topo: self link on %v", a)
	}
	if _, ok := t.Rel(a, b); ok {
		return fmt.Errorf("topo: duplicate link %v-%v", a, b)
	}
	t.adj[a] = append(t.adj[a], Neighbor{ASN: b, Rel: relAB, Delay: delay})
	t.adj[b] = append(t.adj[b], Neighbor{ASN: a, Rel: relAB.Invert(), Delay: delay})
	return nil
}

// Neighbors returns the adjacency list of asn. The returned slice is owned
// by the topology and must not be mutated.
func (t *Topology) Neighbors(asn bgp.ASN) []Neighbor { return t.adj[asn] }

// Rel returns the relationship of b relative to a.
func (t *Topology) Rel(a, b bgp.ASN) (Rel, bool) {
	for _, n := range t.adj[a] {
		if n.ASN == b {
			return n.Rel, true
		}
	}
	return 0, false
}

// Has reports whether the AS exists in the topology.
func (t *Topology) Has(asn bgp.ASN) bool {
	_, ok := t.adj[asn]
	return ok
}

// Len returns the number of ASes.
func (t *Topology) Len() int { return len(t.adj) }

// Links returns the number of undirected links.
func (t *Topology) Links() int {
	n := 0
	for _, adj := range t.adj {
		n += len(adj)
	}
	return n / 2
}

// ASes returns all AS numbers in ascending order.
func (t *Topology) ASes() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(t.adj))
	for asn := range t.adj {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of adjacencies of asn.
func (t *Topology) Degree(asn bgp.ASN) int { return len(t.adj[asn]) }

// Customers returns the ASes that are customers of asn.
func (t *Topology) Customers(asn bgp.ASN) []bgp.ASN {
	var out []bgp.ASN
	for _, n := range t.adj[asn] {
		if n.Rel == Customer {
			out = append(out, n.ASN)
		}
	}
	return out
}

// Providers returns the ASes that are providers of asn.
func (t *Topology) Providers(asn bgp.ASN) []bgp.ASN {
	var out []bgp.ASN
	for _, n := range t.adj[asn] {
		if n.Rel == Provider {
			out = append(out, n.ASN)
		}
	}
	return out
}

// SetGeo places an AS at a geographic point.
func (t *Topology) SetGeo(asn bgp.ASN, g GeoPoint) { t.geo[asn] = g }

// Geo returns the AS's geographic placement, if set.
func (t *Topology) Geo(asn bgp.ASN) (GeoPoint, bool) {
	g, ok := t.geo[asn]
	return g, ok
}

// Connected reports whether the AS graph is a single component.
// Every experiment requires it: a disconnected Internet would make
// "visible at all vantage points" unreachable.
func (t *Topology) Connected() bool {
	if len(t.adj) == 0 {
		return true
	}
	var start bgp.ASN
	for asn := range t.adj {
		start = asn
		break
	}
	seen := map[bgp.ASN]bool{start: true}
	queue := []bgp.ASN{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range t.adj[cur] {
			if !seen[n.ASN] {
				seen[n.ASN] = true
				queue = append(queue, n.ASN)
			}
		}
	}
	return len(seen) == len(t.adj)
}

// CustomerConeSize returns the number of ASes reachable from asn by walking
// provider→customer edges only (asn included). It is the standard measure
// of how much of the Internet an AS provides transit for, used by the
// looking-glass selection strategies in experiment E3.
func (t *Topology) CustomerConeSize(asn bgp.ASN) int {
	seen := map[bgp.ASN]bool{asn: true}
	queue := []bgp.ASN{asn}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range t.adj[cur] {
			if n.Rel == Customer && !seen[n.ASN] {
				seen[n.ASN] = true
				queue = append(queue, n.ASN)
			}
		}
	}
	return len(seen)
}
