package topo

import (
	"testing"
	"time"

	"artemis/internal/bgp"
)

func TestAddC2PBothSides(t *testing.T) {
	tp := New()
	if err := tp.AddC2P(100, 200, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r, ok := tp.Rel(100, 200)
	if !ok || r != Provider {
		t.Fatalf("Rel(100,200) = %v,%v; 200 should be 100's provider", r, ok)
	}
	r, ok = tp.Rel(200, 100)
	if !ok || r != Customer {
		t.Fatalf("Rel(200,100) = %v,%v; 100 should be 200's customer", r, ok)
	}
}

func TestAddPeeringSymmetric(t *testing.T) {
	tp := New()
	if err := tp.AddPeering(100, 200, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]bgp.ASN{{100, 200}, {200, 100}} {
		r, ok := tp.Rel(pair[0], pair[1])
		if !ok || r != Peer {
			t.Fatalf("Rel(%d,%d) = %v,%v", pair[0], pair[1], r, ok)
		}
	}
}

func TestSelfAndDuplicateLinksRejected(t *testing.T) {
	tp := New()
	if err := tp.AddC2P(100, 100, 0); err == nil {
		t.Fatal("self link accepted")
	}
	if err := tp.AddC2P(100, 200, 0); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddPeering(100, 200, 0); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if err := tp.AddC2P(200, 100, 0); err == nil {
		t.Fatal("reverse duplicate link accepted")
	}
}

func TestRelInvert(t *testing.T) {
	if Customer.Invert() != Provider || Provider.Invert() != Customer || Peer.Invert() != Peer {
		t.Fatal("Invert broken")
	}
}

func TestCustomersProviders(t *testing.T) {
	tp := New()
	tp.AddC2P(1, 10, 0)
	tp.AddC2P(2, 10, 0)
	tp.AddC2P(10, 100, 0)
	tp.AddPeering(10, 20, 0)
	if got := tp.Customers(10); len(got) != 2 {
		t.Fatalf("Customers(10) = %v", got)
	}
	if got := tp.Providers(10); len(got) != 1 || got[0] != 100 {
		t.Fatalf("Providers(10) = %v", got)
	}
}

func TestConnected(t *testing.T) {
	tp := New()
	if !tp.Connected() {
		t.Fatal("empty topology should count as connected")
	}
	tp.AddC2P(1, 2, 0)
	tp.AddAS(3)
	if tp.Connected() {
		t.Fatal("isolated AS3 not detected")
	}
	tp.AddC2P(3, 2, 0)
	if !tp.Connected() {
		t.Fatal("now-connected graph reported disconnected")
	}
}

func TestCustomerConeSize(t *testing.T) {
	// 100 provides for 10 and 20; 10 provides for 1.
	tp := New()
	tp.AddC2P(10, 100, 0)
	tp.AddC2P(20, 100, 0)
	tp.AddC2P(1, 10, 0)
	tp.AddPeering(100, 200, 0)
	if got := tp.CustomerConeSize(100); got != 4 {
		t.Fatalf("cone(100) = %d, want 4", got)
	}
	if got := tp.CustomerConeSize(1); got != 1 {
		t.Fatalf("cone(1) = %d, want 1", got)
	}
	if got := tp.CustomerConeSize(200); got != 1 {
		t.Fatalf("cone(200) = %d, want 1 (peering must not count)", got)
	}
}

func TestLineAndStarHelpers(t *testing.T) {
	line := Line(4, time.Millisecond)
	if line.Len() != 4 || line.Links() != 3 {
		t.Fatalf("line: %d ASes %d links", line.Len(), line.Links())
	}
	r, _ := line.Rel(FirstASN, FirstASN+1)
	if r != Provider {
		t.Fatal("line should ascend customer->provider")
	}
	star := Star(5, time.Millisecond)
	if star.Degree(FirstASN) != 4 {
		t.Fatalf("hub degree = %d", star.Degree(FirstASN))
	}
}

func TestGenerateDefault(t *testing.T) {
	cfg := DefaultGenConfig()
	tp, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Len() != cfg.Tier1+cfg.Transit+cfg.Stubs {
		t.Fatalf("Len = %d", tp.Len())
	}
	if !tp.Connected() {
		t.Fatal("generated topology disconnected")
	}
	// Tier-1 clique: first Tier1 ASes are fully meshed peers.
	for i := 0; i < cfg.Tier1; i++ {
		for j := i + 1; j < cfg.Tier1; j++ {
			r, ok := tp.Rel(FirstASN+bgp.ASN(i), FirstASN+bgp.ASN(j))
			if !ok || r != Peer {
				t.Fatalf("tier-1 %d-%d not peered", i, j)
			}
		}
	}
	// Tier-1 ASes have no providers; stubs have no customers.
	for i := 0; i < cfg.Tier1; i++ {
		if len(tp.Providers(FirstASN+bgp.ASN(i))) != 0 {
			t.Fatalf("tier-1 AS %d has a provider", i)
		}
	}
	stubStart := cfg.Tier1 + cfg.Transit
	for i := stubStart; i < tp.Len(); i++ {
		asn := FirstASN + bgp.ASN(i)
		if len(tp.Customers(asn)) != 0 {
			t.Fatalf("stub %v has customers", asn)
		}
		np := len(tp.Providers(asn))
		if np < 1 || np > 3 {
			t.Fatalf("stub %v has %d providers", asn, np)
		}
	}
	// Every AS has a geo placement.
	for _, asn := range tp.ASes() {
		if _, ok := tp.Geo(asn); !ok {
			t.Fatalf("AS %v has no geo point", asn)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.Links() != b.Links() {
		t.Fatalf("same seed produced different graphs: %d/%d vs %d/%d links",
			a.Len(), a.Links(), b.Len(), b.Links())
	}
	for _, asn := range a.ASes() {
		na, nb := a.Neighbors(asn), b.Neighbors(asn)
		if len(na) != len(nb) {
			t.Fatalf("AS %v degree differs", asn)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("AS %v neighbor %d differs: %+v vs %+v", asn, i, na[i], nb[i])
			}
		}
	}
}

func TestGenerateSeedVariation(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Seed = 2
	a, _ := Generate(DefaultGenConfig())
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same node count, but link structure should differ somewhere.
	if a.Links() == b.Links() {
		same := true
		for _, asn := range a.ASes() {
			if len(a.Neighbors(asn)) != len(b.Neighbors(asn)) {
				same = false
				break
			}
		}
		if same {
			t.Log("structures coincidentally similar; acceptable but unusual")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Tier1: 0}); err == nil {
		t.Fatal("Tier1=0 accepted")
	}
	bad := DefaultGenConfig()
	bad.MinDelay, bad.MaxDelay = time.Second, time.Millisecond
	if _, err := Generate(bad); err == nil {
		t.Fatal("inverted delay bounds accepted")
	}
}

func TestGenerateTinyConfigs(t *testing.T) {
	// Degenerate but legal configurations must still generate.
	for _, cfg := range []GenConfig{
		{Tier1: 1, Stubs: 3, MinDelay: time.Millisecond, MaxDelay: time.Millisecond},
		{Tier1: 2, Transit: 1, MinDelay: time.Millisecond, MaxDelay: time.Millisecond},
		{Tier1: 3, Transit: 5, Stubs: 10, PeerProb: 1.0, MinDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	} {
		tp, err := Generate(cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if !tp.Connected() {
			t.Fatalf("cfg %+v: disconnected", cfg)
		}
	}
}
