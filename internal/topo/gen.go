package topo

import (
	"fmt"
	"math/rand"
	"time"

	"artemis/internal/bgp"
)

// GenConfig parameterizes the synthetic Internet generator.
type GenConfig struct {
	// Tier1 is the number of tier-1 ASes, fully meshed with peering links.
	Tier1 int
	// Transit is the number of mid-tier transit providers. Each buys
	// transit from 2 providers drawn from tier-1 and earlier transit ASes,
	// and peers with a few same-tier ASes.
	Transit int
	// Stubs is the number of edge (stub) ASes. Each buys transit from 1-3
	// transit providers.
	Stubs int
	// PeerProb is the probability that any given transit AS peers with
	// another random same-tier transit AS (evaluated Transit times).
	PeerProb float64
	// MinDelay and MaxDelay bound per-link one-way propagation delay.
	MinDelay, MaxDelay time.Duration
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGenConfig is a laptop-scale Internet: big enough for realistic
// multi-hop propagation and partial hijack capture, small enough that a
// full experiment suite runs in seconds.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Tier1:    8,
		Transit:  72,
		Stubs:    420,
		PeerProb: 0.35,
		MinDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond,
		Seed:     1,
	}
}

// regions used for geographic placement of generated ASes.
var regions = []struct {
	name     string
	lat, lon float64
}{
	{"north-america", 40, -100},
	{"south-america", -15, -60},
	{"europe", 50, 10},
	{"africa", 5, 20},
	{"asia", 30, 100},
	{"oceania", -25, 135},
}

// FirstASN is the ASN assigned to the first generated AS; generated ASNs
// are sequential from here, which keeps logs readable.
const FirstASN bgp.ASN = 1000

// Generate builds a hierarchical synthetic Internet. ASNs are assigned
// sequentially: tier-1 first, then transit, then stubs — so tests can
// address "some stub" deterministically.
func Generate(cfg GenConfig) (*Topology, error) {
	if cfg.Tier1 < 1 {
		return nil, fmt.Errorf("topo: need at least one tier-1 AS")
	}
	if cfg.MaxDelay < cfg.MinDelay {
		return nil, fmt.Errorf("topo: MaxDelay < MinDelay")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := New()
	delay := func() time.Duration {
		if cfg.MaxDelay == cfg.MinDelay {
			return cfg.MinDelay
		}
		return cfg.MinDelay + time.Duration(rng.Int63n(int64(cfg.MaxDelay-cfg.MinDelay)))
	}
	place := func(asn bgp.ASN) {
		r := regions[rng.Intn(len(regions))]
		t.SetGeo(asn, GeoPoint{
			Lat:    r.lat + rng.Float64()*16 - 8,
			Lon:    r.lon + rng.Float64()*24 - 12,
			Region: r.name,
		})
	}

	next := FirstASN
	newAS := func() bgp.ASN {
		asn := next
		next++
		t.AddAS(asn)
		place(asn)
		return asn
	}

	// Tier-1 clique.
	tier1 := make([]bgp.ASN, cfg.Tier1)
	for i := range tier1 {
		tier1[i] = newAS()
	}
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			if err := t.AddPeering(tier1[i], tier1[j], delay()); err != nil {
				return nil, err
			}
		}
	}

	// Transit tier: each buys from 2 distinct providers above it.
	transit := make([]bgp.ASN, cfg.Transit)
	for i := range transit {
		asn := newAS()
		transit[i] = asn
		pool := append(append([]bgp.ASN(nil), tier1...), transit[:i]...)
		for _, p := range pickDistinct(rng, pool, 2) {
			if err := t.AddC2P(asn, p, delay()); err != nil {
				return nil, err
			}
		}
	}
	// Same-tier peering among transit ASes.
	for _, a := range transit {
		if rng.Float64() >= cfg.PeerProb || len(transit) < 2 {
			continue
		}
		b := transit[rng.Intn(len(transit))]
		if b == a {
			continue
		}
		if _, exists := t.Rel(a, b); exists {
			continue
		}
		if err := t.AddPeering(a, b, delay()); err != nil {
			return nil, err
		}
	}

	// Stubs: each buys from 1-3 transit providers (or tier-1 when there is
	// no transit tier).
	pool := transit
	if len(pool) == 0 {
		pool = tier1
	}
	for i := 0; i < cfg.Stubs; i++ {
		asn := newAS()
		n := 1 + rng.Intn(3)
		for _, p := range pickDistinct(rng, pool, n) {
			if err := t.AddC2P(asn, p, delay()); err != nil {
				return nil, err
			}
		}
	}

	if !t.Connected() {
		return nil, fmt.Errorf("topo: generated topology is disconnected")
	}
	return t, nil
}

func pickDistinct(rng *rand.Rand, pool []bgp.ASN, n int) []bgp.ASN {
	if n >= len(pool) {
		return append([]bgp.ASN(nil), pool...)
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]bgp.ASN, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// Line builds a chain AS1000 - AS1001 - ... where each AS is the customer
// of the next (traffic flows up the chain). Useful for deterministic tests.
func Line(n int, linkDelay time.Duration) *Topology {
	t := New()
	for i := 0; i < n; i++ {
		t.AddAS(FirstASN + bgp.ASN(i))
	}
	for i := 0; i+1 < n; i++ {
		if err := t.AddC2P(FirstASN+bgp.ASN(i), FirstASN+bgp.ASN(i+1), linkDelay); err != nil {
			panic(err)
		}
	}
	return t
}

// Star builds a hub with n-1 customer spokes: spoke ASes 1001.. are
// customers of hub AS1000.
func Star(n int, linkDelay time.Duration) *Topology {
	t := New()
	hub := FirstASN
	t.AddAS(hub)
	for i := 1; i < n; i++ {
		if err := t.AddC2P(FirstASN+bgp.ASN(i), hub, linkDelay); err != nil {
			panic(err)
		}
	}
	return t
}
