package sim

import (
	"sync"
	"testing"
	"time"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(3*time.Second, func() { got = append(got, 3) })
	e.At(1*time.Second, func() { got = append(got, 1) })
	e.At(2*time.Second, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3*time.Second {
		t.Fatalf("final time = %v, want 3s", end)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	e := NewEngine(1)
	var at2 time.Duration
	e.At(time.Minute, func() {
		e.After(30*time.Second, func() { at2 = e.Now() })
	})
	e.Run()
	if at2 != 90*time.Second {
		t.Fatalf("nested After fired at %v, want 90s", at2)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var fired time.Duration
	e.At(time.Minute, func() {
		e.At(time.Second, func() { fired = e.Now() }) // in the past
	})
	e.Run()
	if fired != time.Minute {
		t.Fatalf("past event fired at %v, want 1m", fired)
	}
	e2 := NewEngine(1)
	e2.At(time.Minute, func() {
		e2.After(-5*time.Second, func() { fired = e2.Now() })
	})
	e2.Run()
	if fired != time.Minute {
		t.Fatalf("negative After fired at %v, want 1m", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		e.At(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want clock advanced to 3s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("remaining event not delivered: %v", fired)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.At(time.Second, func() { n++ })
	if !e.Step() {
		t.Fatal("Step with queued event returned false")
	}
	if n != 1 || e.Now() != time.Second {
		t.Fatalf("n=%d now=%v", n, e.Now())
	}
	if e.Step() {
		t.Fatal("Step with empty queue returned true")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.At(time.Second, func() { n++; e.Stop() })
	e.At(2*time.Second, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("Stop did not halt run, n=%d", n)
	}
	// Engine is reusable after Stop.
	e.Run()
	if n != 2 {
		t.Fatalf("Run after Stop did not resume, n=%d", n)
	}
}

func TestCrossGoroutineScheduling(t *testing.T) {
	e := NewEngine(1)
	var mu sync.Mutex
	n := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.At(time.Duration(i)*time.Millisecond, func() {
				mu.Lock()
				n++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	e.Run()
	if n != 50 {
		t.Fatalf("n = %d, want 50", n)
	}
}

func TestRunPacedCompressesTime(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	// 2 simulated seconds at 100x should take ~20ms wall time.
	e.At(2*time.Second, func() { fired++ })
	start := time.Now()
	e.RunPaced(100, 0, 0)
	wall := time.Since(start)
	if fired != 1 {
		t.Fatal("event not fired")
	}
	if wall > time.Second {
		t.Fatalf("paced run too slow: %v", wall)
	}
	if wall < 10*time.Millisecond {
		t.Fatalf("paced run did not pace at all: %v", wall)
	}
}

func TestRunPacedHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(time.Millisecond, func() { fired++ })
	e.At(time.Hour, func() { fired++ })
	e.RunPaced(1, time.Second, 0)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (horizon must cut the far event)", fired)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine(7)
		var got []int
		var rec func(depth int)
		rec = func(depth int) {
			if depth == 0 {
				return
			}
			d := time.Duration(e.Rand().Intn(1000)) * time.Millisecond
			e.After(d, func() {
				got = append(got, depth*1000+int(d/time.Millisecond))
				rec(depth - 1)
			})
		}
		rec(20)
		e.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}
