// Package sim provides the discrete-event simulation engine that drives the
// reproduced ARTEMIS testbed: a virtual clock, an event scheduler, and an
// optional wall-clock pacer for the live demo mode.
//
// Everything in the simulated Internet — BGP update propagation, MRAI
// timers, collector batching, looking-glass polling, controller
// configuration latency — is an event on this engine. Running in virtual
// time makes a "6 minute" hijack-and-mitigation experiment complete in
// milliseconds, while the pacer replays the same event stream against the
// wall clock (optionally time-scaled) so that real network feed servers
// can stream it to real clients.
package sim

import (
	"container/heap"
	"math/rand"
	"sync"
	"time"
)

// Engine is a discrete-event scheduler with a virtual clock.
//
// Scheduling is safe from any goroutine; event functions themselves are
// executed sequentially by whichever goroutine calls Run/RunUntil/Step,
// so handlers never race with each other. Determinism: with the same seed
// and the same schedule order, runs are bit-for-bit identical (ties in
// time are broken by scheduling sequence number).
type Engine struct {
	mu    sync.Mutex
	queue eventQueue
	now   time.Duration
	seq   uint64
	rng   *rand.Rand

	// pace, when non-zero, is consulted by RunPaced.
	stopped bool
}

// NewEngine returns an engine at virtual time zero whose RNG is seeded
// deterministically.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Rand returns the engine's deterministic RNG. It must only be used from
// event handlers (which are serialized) to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (or present) runs the event at the current time, after already-queued
// events for that time.
func (e *Engine) At(t time.Duration, fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.now + d
	if d < 0 {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queue.Len()
}

// Stop makes Run/RunUntil/RunPaced return after the current event.
func (e *Engine) Stop() {
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
}

// Step executes the single earliest event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	e.mu.Lock()
	if e.queue.Len() == 0 {
		e.mu.Unlock()
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.mu.Unlock()
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called, and
// returns the final virtual time.
func (e *Engine) Run() time.Duration {
	for {
		e.mu.Lock()
		if e.stopped || e.queue.Len() == 0 {
			now := e.now
			e.stopped = false
			e.mu.Unlock()
			return now
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.mu.Unlock()
		ev.fn()
	}
}

// RunUntil executes events with time <= t, then advances the clock to
// exactly t. Events scheduled during the run are honored if they fall
// within the horizon.
func (e *Engine) RunUntil(t time.Duration) {
	for {
		e.mu.Lock()
		if e.stopped {
			e.stopped = false
			e.mu.Unlock()
			return
		}
		if e.queue.Len() == 0 || e.queue[0].at > t {
			if e.now < t {
				e.now = t
			}
			e.mu.Unlock()
			return
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.mu.Unlock()
		ev.fn()
	}
}

// RunPaced replays events against the wall clock: an event at virtual time
// T fires roughly T/scale after the call (scale 1 is real time, scale 60
// compresses a minute into a second). It returns when the queue drains, the
// horizon (if > 0) is reached, or Stop is called. Unlike Run, it tolerates
// an intermittently empty queue for up to idle, so that live producers
// (e.g. an interactive hijack trigger) can keep feeding it.
func (e *Engine) RunPaced(scale float64, horizon, idle time.Duration) {
	if scale <= 0 {
		scale = 1
	}
	start := time.Now()
	base := e.Now()
	for {
		e.mu.Lock()
		if e.stopped {
			e.stopped = false
			e.mu.Unlock()
			return
		}
		if e.queue.Len() == 0 {
			e.mu.Unlock()
			if idle <= 0 {
				return
			}
			deadline := time.Now().Add(idle)
			for e.Pending() == 0 {
				if time.Now().After(deadline) {
					return
				}
				time.Sleep(time.Millisecond)
			}
			continue
		}
		next := e.queue[0].at
		e.mu.Unlock()
		if horizon > 0 && next > horizon {
			return
		}
		wall := start.Add(time.Duration(float64(next-base) / scale))
		if d := time.Until(wall); d > 0 {
			time.Sleep(d)
		}
		e.mu.Lock()
		if e.queue.Len() == 0 || e.queue[0].at > next {
			e.mu.Unlock()
			continue // producer raced us; re-evaluate
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.mu.Unlock()
		ev.fn()
	}
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
