package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// The generator must cover the full taxonomy across all families and be
// reproducible call to call.
func TestGenerateMatrix(t *testing.T) {
	a, err := Generate(nil, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(nil, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not deterministic")
	}
	if want := len(Classes()) * len(Families()) * 2; len(a) != want {
		t.Fatalf("generated %d scenarios, want %d", len(a), want)
	}
	if len(Classes()) < 8 {
		t.Fatalf("taxonomy has %d classes, want >= 8", len(Classes()))
	}
	seen := map[string]bool{}
	for _, sc := range a {
		if seen[sc.Name()] {
			t.Fatalf("duplicate scenario %s", sc.Name())
		}
		seen[sc.Name()] = true
		if _, err := sc.Options(); err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if _, err := sc.steps(); err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
	}
	if _, err := Generate([]string{"no-such-class"}, nil, 1, 1); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := Generate(nil, []string{"v5"}, 1, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// Every taxonomy class must earn its expectation on the v4 family: the
// attack classes alert with the right type, the controls and the type-N
// blind spot stay silent. One seed per class keeps this test at a few
// seconds of wall clock (virtual-time trials).
func TestTaxonomyVerdictsV4(t *testing.T) {
	scs, err := Generate(nil, []string{"v4"}, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Class, func(t *testing.T) {
			t.Parallel()
			res := Run(sc)
			if res.Failed() {
				t.Fatalf("%s: verdict %s (%s)", sc.Name(), res.Verdict, res.Detail)
			}
		})
	}
}

// The v6 and mixed families must hold the same verdicts for the core
// attack kinds and the MOAS control.
func TestTaxonomyVerdictsOtherFamilies(t *testing.T) {
	classes := []string{"exact-type0", "sub-prefix", "squat", "legit-moas", "outage-hijack"}
	for _, family := range []string{"v6", "mixed"} {
		// Two seeds for mixed so both target parities (v4 and v6 member)
		// are exercised.
		seeds := 1
		if family == "mixed" {
			seeds = 2
		}
		scs, err := Generate(classes, []string{family}, seeds, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range scs {
			sc := sc
			t.Run(sc.Name(), func(t *testing.T) {
				t.Parallel()
				res := Run(sc)
				if res.Failed() {
					t.Fatalf("%s: verdict %s (%s)", sc.Name(), res.Verdict, res.Detail)
				}
			})
		}
	}
}

// Same scenarios, same seeds → byte-identical scorecard.
func TestScorecardDeterministic(t *testing.T) {
	scs, err := Generate([]string{"exact-type0", "route-leak"}, []string{"v4"}, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		card := Score(RunAll(scs, nil), 11, 1)
		blob, err := json.Marshal(card)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("scorecard not deterministic:\n%s\n%s", a, b)
	}
}

func TestGates(t *testing.T) {
	gates, err := ParseGates(strings.NewReader(`
# comment
exact-type0 fn <= 0
legit-moas fp <= 0
* errors <= 0
exact-type0 detection_p90_ms <= 120000
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(gates) != 4 {
		t.Fatalf("parsed %d gates, want 4", len(gates))
	}
	if _, err := ParseGates(strings.NewReader("exact-type0 fn >= 1")); err == nil {
		t.Fatal("bad operator accepted")
	}

	mk := func(verdict string, detected bool) Result {
		r := Result{
			Scenario: Scenario{Class: "exact-type0", Family: "v4", Seed: 1},
			Expect:   Expectation{Detect: true, Alert: "exact-origin"},
			Verdict:  verdict,
		}
		r.Trial.Detected = detected
		return r
	}
	green := Score([]Result{mk(VerdictOK, true), {
		Scenario: Scenario{Class: "legit-moas", Family: "v4", Seed: 1},
		Expect:   Expectation{Detect: false},
		Verdict:  VerdictOK,
	}}, 1, 1)
	if bad := green.Check(gates); len(bad) != 0 {
		t.Fatalf("green scorecard flagged: %v", bad)
	}
	red := Score([]Result{mk(VerdictFN, false), {
		Scenario: Scenario{Class: "legit-moas", Family: "v4", Seed: 1},
		Expect:   Expectation{Detect: false},
		Verdict:  VerdictFP,
	}}, 1, 1)
	bad := red.Check(gates)
	if len(bad) != 2 {
		t.Fatalf("violations = %v, want fn and fp breaches", bad)
	}
	// A gate naming a class missing from the run is itself a violation.
	empty := Score(nil, 1, 1)
	if bad := empty.Check(gates[:1]); len(bad) != 1 {
		t.Fatalf("missing-class gate not flagged: %v", bad)
	}
}

// The shrinker must reduce topology size and timing while preserving the
// verdict it is locking in.
func TestShrinkPreservesVerdict(t *testing.T) {
	sc := Scenario{
		Class: "exact-type0", Family: "v4", Seed: 5,
		Owned: "10.0.0.0/23", OwnedSet: []string{"10.0.0.0/23", "10.0.2.0/23"},
		Stubs: genStubs, Transit: genTransit, HijackDelay: attackDelay(5),
	}
	small, tries := Shrink(sc, VerdictOK, 10)
	if tries == 0 {
		t.Fatal("shrinker never probed")
	}
	if small.Stubs >= sc.Stubs && small.Transit >= sc.Transit &&
		small.HijackDelay >= sc.HijackDelay && len(small.OwnedSet) >= len(sc.OwnedSet) {
		t.Fatalf("nothing shrunk: %+v", small)
	}
	if res := Run(small); res.Verdict != VerdictOK {
		t.Fatalf("shrunk scenario verdict = %s (%s)", res.Verdict, res.Detail)
	}
	if small.Stubs < shrinkMinStubs || small.Transit < shrinkMinTransit {
		t.Fatalf("shrunk below floors: %+v", small)
	}
}

// Capture → load → replay must reproduce the live verdict offline, for
// both a detection class and a silence class.
func TestCaptureReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, class := range []string{"sub-prefix-forged-origin", "legit-moas"} {
		sc := Scenario{
			Class: class, Family: "v4", Seed: 2,
			Owned: "10.0.0.0/23", OwnedSet: []string{"10.0.0.0/23", "10.0.2.0/23"},
			Stubs: 40, Transit: 12,
		}
		rep, res, err := Capture(sc, dir, class)
		if err != nil {
			t.Fatalf("%s: capture: %v", class, err)
		}
		if res.Failed() {
			t.Fatalf("%s: capture verdict %s (%s)", class, res.Verdict, res.Detail)
		}
		loaded, err := LoadReproducer(filepath.Join(dir, class+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, loaded) {
			t.Fatalf("%s: sidecar round-trip mismatch", class)
		}
		alerts, err := loaded.Replay(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := loaded.CheckExpect(alerts); err != nil {
			t.Fatal(err)
		}
	}
}

// The checked-in regression corpus must keep replaying to its recorded
// expectations — these are the shrunk reproducers of detector bugs this
// repo fixed (hidden forged-origin sub-prefix, MOAS whitelisting) plus
// the prepend-forgery upstream-inference case.
func TestCorpusReplay(t *testing.T) {
	sidecars, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sidecars) == 0 {
		t.Fatal("no reproducers in testdata/")
	}
	for _, sidecar := range sidecars {
		rep, err := LoadReproducer(sidecar)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(filepath.Base(sidecar), func(t *testing.T) {
			alerts, err := rep.Replay("testdata")
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.CheckExpect(alerts); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Corpus files stay newline-terminated and parseable as JSON.
	for _, sidecar := range sidecars {
		blob, err := os.ReadFile(sidecar)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		if err := json.Unmarshal(blob, &v); err != nil {
			t.Fatalf("%s: %v", sidecar, err)
		}
	}
}
