// Package fleet generates, runs, scores, and shrinks adversarial hijack
// campaigns at topology scale. A fleet run executes N seeded scenarios
// per taxonomy class — exact-prefix type-0/1/N, sub-prefix (plain and
// forged-origin), squatting, route leaks, legitimate MOAS, prepend
// forgery, and adversarially-timed campaigns (hijack during a feed
// outage, during a config swap, during mitigation of a prior incident) —
// over v4, v6, and mixed owned sets, and reports detection-latency
// percentiles and FP/FN rates per class as a scorecard. Failures are
// shrunk to minimal reproducers and exported as detector-level .evlog
// replays for the regression corpus.
package fleet

import (
	"fmt"
	"time"

	"artemis/internal/experiment"
	"artemis/internal/hijack"
	"artemis/internal/prefix"
	"artemis/internal/topo"
)

// Scenario is one seeded, self-describing adversarial trial. The class
// name selects the attack kind, detector features, and campaign script
// (see classSpecs); the remaining fields are the knobs the shrinker is
// allowed to turn. Prefixes are strings so scenarios round-trip through
// JSON (reproducer sidecars, scorecard failure listings).
type Scenario struct {
	// Class is the taxonomy class (one of Classes()).
	Class string `json:"class"`
	// Family is the owned-set address family: "v4", "v6", or "mixed".
	Family string `json:"family"`
	// Seed drives topology generation, feed jitter, and victim/attacker
	// placement. Same scenario, same seed → same trial, bit for bit.
	Seed int64 `json:"seed"`
	// Owned is the prefix the attack targets; member of OwnedSet.
	Owned string `json:"owned"`
	// OwnedSet is everything the victim originates.
	OwnedSet []string `json:"owned_set"`
	// Stubs and Transit size the synthetic Internet.
	Stubs   int `json:"stubs"`
	Transit int `json:"transit"`
	// HijackDelay postpones the measured attack after convergence (the
	// timing dimension; campaigns may extend it).
	HijackDelay time.Duration `json:"hijack_delay_ns"`
}

// Name is the scenario's unique id within a fleet run.
func (sc Scenario) Name() string {
	return fmt.Sprintf("%s/%s/seed%d", sc.Class, sc.Family, sc.Seed)
}

// Expectation is the ground-truth verdict a correct detector must reach.
type Expectation struct {
	// Detect: must ARTEMIS raise an alert for the measured attack?
	// Accuracy controls (route-leak, legit-moas) and the documented
	// type-N blind spot set it false — an alert there is a false
	// positive.
	Detect bool `json:"detect"`
	// Alert is the required classification when Detect is true (0 = any).
	Alert AlertName `json:"alert,omitempty"`
}

// Expect returns the class's expectation.
func (sc Scenario) Expect() (Expectation, error) {
	spec, err := sc.spec()
	if err != nil {
		return Expectation{}, err
	}
	return Expectation{Detect: spec.detect, Alert: spec.alert}, nil
}

// Options maps the scenario onto an experiment environment.
func (sc Scenario) Options() (experiment.Options, error) {
	spec, err := sc.spec()
	if err != nil {
		return experiment.Options{}, err
	}
	owned, err := prefix.Parse(sc.Owned)
	if err != nil {
		return experiment.Options{}, fmt.Errorf("fleet: %s: owned: %w", sc.Name(), err)
	}
	set := make([]prefix.Prefix, len(sc.OwnedSet))
	for i, s := range sc.OwnedSet {
		if set[i], err = prefix.Parse(s); err != nil {
			return experiment.Options{}, fmt.Errorf("fleet: %s: owned set: %w", sc.Name(), err)
		}
	}
	cfg := topo.DefaultGenConfig()
	cfg.Seed = sc.Seed
	if sc.Stubs > 0 {
		cfg.Stubs = sc.Stubs
	}
	if sc.Transit > 0 {
		cfg.Transit = sc.Transit
	}
	opts := experiment.Options{
		Seed:           sc.Seed,
		Topo:           cfg,
		Owned:          owned,
		OwnedSet:       set,
		Kind:           spec.kind,
		Partner:        spec.partner,
		UpstreamPolicy: spec.upstream,
		SplitCoverage:  spec.split,
	}
	if spec.campaign == campaignOutage {
		// Two sources splitting two prefixes: killing the one that covers
		// the target leaves a real coverage hole for auto-widen to close.
		opts.Sources = outageSources
	}
	return opts, nil
}

// otherOwned returns an OwnedSet member different from the attack target
// (the remit campaign's prior-incident victim).
func (sc Scenario) otherOwned() (string, error) {
	for _, p := range sc.OwnedSet {
		if p != sc.Owned {
			return p, nil
		}
	}
	return "", fmt.Errorf("fleet: %s: owned set has no second prefix", sc.Name())
}

// attackPrefixes lists every prefix the scenario's script announces
// adversarially (the measured attack, plus the remit campaign's prior
// incident). The reproducer snapshot must not whitelist these as
// self-announcements: at live time the mitigator registered them only
// *after* the alert, while a replayed Self set applies from event one.
func (sc Scenario) attackPrefixes() ([]prefix.Prefix, error) {
	spec, err := sc.spec()
	if err != nil {
		return nil, err
	}
	owned, err := prefix.Parse(sc.Owned)
	if err != nil {
		return nil, err
	}
	attack, err := hijack.AttackPrefix(spec.kind, owned)
	if err != nil {
		return nil, err
	}
	out := []prefix.Prefix{attack}
	if spec.campaign == campaignRemit {
		other, err := sc.otherOwned()
		if err != nil {
			return nil, err
		}
		op, err := prefix.Parse(other)
		if err != nil {
			return nil, err
		}
		prior, err := hijack.AttackPrefix(hijack.SubPrefix, op)
		if err != nil {
			return nil, err
		}
		out = append(out, prior)
	}
	return out, nil
}

// ownedIndex returns the target's position in the owned set.
func (sc Scenario) ownedIndex() (int, error) {
	for i, p := range sc.OwnedSet {
		if p == sc.Owned {
			return i, nil
		}
	}
	return 0, fmt.Errorf("fleet: %s: owned %s not in owned set", sc.Name(), sc.Owned)
}
