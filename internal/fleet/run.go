package fleet

import (
	"fmt"
	"time"

	"artemis/internal/experiment"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/hijack"
	"artemis/internal/prefix"
)

// Verdicts a trial can earn against its class expectation.
const (
	VerdictOK        = "ok"
	VerdictFN        = "fn"         // expected an alert, got none
	VerdictFP        = "fp"         // expected silence, got an alert
	VerdictWrongType = "wrong-type" // alerted, but misclassified
	VerdictError     = "error"      // the trial itself failed
)

// Result is one scenario's outcome.
type Result struct {
	Scenario Scenario         `json:"scenario"`
	Expect   Expectation      `json:"expect"`
	Verdict  string           `json:"verdict"`
	Detail   string           `json:"detail,omitempty"`
	Trial    experiment.Trial `json:"trial"`
	// Shrunk is the minimized scenario still reproducing the failure
	// (filled in by the fleet driver when shrinking is enabled).
	Shrunk *Scenario `json:"shrunk,omitempty"`
	// Reproducer is the exported replay sidecar's file name, when the
	// driver wrote one.
	Reproducer string `json:"reproducer,omitempty"`
}

// Failed reports whether the trial missed its expectation.
func (r Result) Failed() bool { return r.Verdict != VerdictOK }

// steps compiles the scenario's campaign into a timed event script.
func (sc Scenario) steps() ([]experiment.ScriptStep, error) {
	spec, err := sc.spec()
	if err != nil {
		return nil, err
	}
	attack := experiment.ScriptStep{
		After:  sc.HijackDelay,
		Name:   "hijack",
		Hijack: true,
		Do: func(e *experiment.Env) error {
			_, err := e.LaunchAttack()
			return err
		},
	}
	switch spec.campaign {
	case "":
		return []experiment.ScriptStep{attack}, nil

	case campaignOutage:
		// Kill the source whose coverage slice holds the target, then
		// hijack into the hole. SplitCoverage assigns prefix j to source
		// j mod len(sources), so the dying source is determined by the
		// target's position in the owned set.
		idx, err := sc.ownedIndex()
		if err != nil {
			return nil, err
		}
		name := outageSources[idx%len(outageSources)]
		kill := experiment.ScriptStep{
			Name: "feed outage: " + name,
			Do: func(e *experiment.Env) error {
				id, ok := e.SourceIDs[name]
				if !ok {
					return fmt.Errorf("fleet: no supervised source %q", name)
				}
				e.Ingest.Remove(id)
				return nil
			},
		}
		attack.After = maxDuration(sc.HijackDelay, time.Minute)
		return []experiment.ScriptStep{kill, attack}, nil

	case campaignReconfig:
		// Swap in a (cloned, identical) config snapshot through the
		// pipeline barrier 20 s into the incident — detection typically
		// lands ~45 s in, so classification straddles the swap.
		swap := experiment.ScriptStep{
			After: 20 * time.Second,
			Name:  "config swap",
			Do: func(e *experiment.Env) error {
				return e.Artemis.Reconfigure(e.Artemis.CurrentConfig().Clone())
			},
		}
		return []experiment.ScriptStep{attack, swap}, nil

	case campaignRemit:
		// Sub-prefix hijack against another owned prefix first; the
		// measured attack strikes while that incident's mitigation is
		// still propagating.
		other, err := sc.otherOwned()
		if err != nil {
			return nil, err
		}
		prior := experiment.ScriptStep{
			Name: "prior incident: " + other,
			Do: func(e *experiment.Env) error {
				op, err := prefix.Parse(other)
				if err != nil {
					return err
				}
				tgt, err := hijack.AttackPrefix(hijack.SubPrefix, op)
				if err != nil {
					return err
				}
				return e.Attacker.Announce(e.Net, tgt)
			},
		}
		attack.After = maxDuration(sc.HijackDelay, 2*time.Minute)
		return []experiment.ScriptStep{prior, attack}, nil
	}
	return nil, fmt.Errorf("fleet: unknown campaign %q", spec.campaign)
}

// Run executes the scenario in a fresh environment and judges the trial
// against the class expectation. Deterministic per (scenario, seed).
func Run(sc Scenario) Result {
	return run(sc, nil)
}

// run is Run with an optional tee observing every event batch delivered
// to the pipeline (the reproducer recorder hooks here).
func run(sc Scenario, tee func([]feedtypes.Event)) Result {
	expect, err := sc.Expect()
	if err != nil {
		return errResult(sc, Expectation{}, err)
	}
	opts, err := sc.Options()
	if err != nil {
		return errResult(sc, expect, err)
	}
	opts.DeliverTee = tee
	steps, err := sc.steps()
	if err != nil {
		return errResult(sc, expect, err)
	}
	env, err := experiment.Build(opts)
	if err != nil {
		return errResult(sc, expect, err)
	}
	defer env.Close()
	tr, err := experiment.RunScript(env, steps)
	if err != nil {
		return errResult(sc, expect, err)
	}
	return evaluate(sc, expect, tr)
}

func errResult(sc Scenario, expect Expectation, err error) Result {
	return Result{Scenario: sc, Expect: expect, Verdict: VerdictError, Detail: err.Error()}
}

// evaluate judges a finished trial against the expectation.
func evaluate(sc Scenario, expect Expectation, tr experiment.Trial) Result {
	res := Result{Scenario: sc, Expect: expect, Trial: tr, Verdict: VerdictOK}
	switch {
	case expect.Detect && !tr.Detected:
		res.Verdict = VerdictFN
		res.Detail = fmt.Sprintf("no alert; %d ASes captured", tr.EverCaptured)
	case !expect.Detect && tr.Detected:
		res.Verdict = VerdictFP
		res.Detail = fmt.Sprintf("unexpected %s alert via %s", tr.AlertType, tr.DetectedBy)
	case tr.Detected && expect.Alert != "" && AlertName(tr.AlertType.String()) != expect.Alert:
		res.Verdict = VerdictWrongType
		res.Detail = fmt.Sprintf("classified %s, want %s", tr.AlertType, expect.Alert)
	}
	return res
}

// RunAll executes the scenarios serially (virtual-time trials are fast)
// and reports each result. Progress, when non-nil, is called after every
// trial.
func RunAll(scs []Scenario, progress func(Result)) []Result {
	out := make([]Result, len(scs))
	for i, sc := range scs {
		out[i] = Run(sc)
		if progress != nil {
			progress(out[i])
		}
	}
	return out
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
