package fleet

// Shrink floors: small enough for a fast reproducer, large enough that
// every class still builds (Partner needs 6 stubs; propagation needs a
// couple of transit tiers).
const (
	shrinkMinStubs   = 20
	shrinkMinTransit = 8
)

// Shrink greedily reduces a failing scenario while the failure still
// reproduces (same verdict on re-run), and returns the smallest
// reproducing variant plus the number of trial executions spent. Each
// probe is a full virtual-time trial, so the budget bounds wall-clock.
//
// Dimensions, in order: topology size (stubs, transit — halved toward
// the floors), attack timing (delay dropped to zero), and the owned set
// (collapsed to just the target when the class doesn't script the other
// prefix). The loop repeats until a full pass keeps nothing.
func Shrink(sc Scenario, verdict string, budget int) (Scenario, int) {
	spec, err := sc.spec()
	if err != nil {
		return sc, 0
	}
	// Campaigns that script a second prefix or a split feed arsenal need
	// the full owned set.
	needsSet := spec.campaign == campaignOutage || spec.campaign == campaignRemit
	tries := 0
	probe := func(cand Scenario) bool {
		if tries >= budget {
			return false
		}
		tries++
		return Run(cand).Verdict == verdict
	}
	for changed := true; changed && tries < budget; {
		changed = false
		if sc.Stubs > shrinkMinStubs {
			cand := sc
			cand.Stubs = maxInt(shrinkMinStubs, sc.Stubs/2)
			if probe(cand) {
				sc, changed = cand, true
			}
		}
		if sc.Transit > shrinkMinTransit {
			cand := sc
			cand.Transit = maxInt(shrinkMinTransit, sc.Transit/2)
			if probe(cand) {
				sc, changed = cand, true
			}
		}
		if sc.HijackDelay > 0 {
			cand := sc
			cand.HijackDelay = 0
			if probe(cand) {
				sc, changed = cand, true
			}
		}
		if len(sc.OwnedSet) > 1 && !needsSet {
			cand := sc
			cand.OwnedSet = []string{sc.Owned}
			if probe(cand) {
				sc, changed = cand, true
			}
		}
	}
	return sc, tries
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
