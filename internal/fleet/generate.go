package fleet

import (
	"fmt"
	"time"

	"artemis/internal/experiment"
	"artemis/internal/hijack"
)

// AlertName is a core.AlertType in its string form, so expectations and
// scorecards stay readable in JSON ("sub-prefix", not 2).
type AlertName string

// Campaign scripts (adversarial timing around the measured hijack).
const (
	// campaignOutage kills the feed source covering the target prefix,
	// then hijacks into the coverage hole — detection must land via the
	// auto-widened survivor.
	campaignOutage = "outage"
	// campaignReconfig swaps the ARTEMIS config at the pipeline barrier
	// 20 s into the incident, mid-detection.
	campaignReconfig = "reconfig"
	// campaignRemit mounts a sub-prefix hijack against another owned
	// prefix first, then the measured attack while that prior incident is
	// being mitigated.
	campaignRemit = "remit"
)

// outageSources is the deliberately thin feed arsenal of the outage
// campaign: two sources, one prefix slice each (SplitCoverage).
var outageSources = []string{experiment.SrcRIS, experiment.SrcBGPmon}

// classSpec pins down everything a class name implies.
type classSpec struct {
	name     string
	kind     hijack.Kind
	upstream bool   // enable AllowedUpstreams (type-1 detection)
	partner  bool   // attach a second legitimate origin
	split    bool   // per-source disjoint coverage + auto-widen
	campaign string // "" = plain single-hijack trial
	detect   bool   // ground truth: must alert
	alert    AlertName
	doc      string
}

// classSpecs is the taxonomy, in scorecard order. Twelve classes: nine
// single-event attack kinds (including two must-NOT-alert controls and
// the documented type-N blind spot) plus three adversarially-timed
// campaigns.
var classSpecs = []classSpec{
	{
		name: "exact-type0", kind: hijack.ExactOrigin,
		detect: true, alert: "exact-origin",
		doc: "attacker originates the exact owned prefix (MOAS)",
	},
	{
		name: "exact-type1", kind: hijack.PathFake, upstream: true,
		detect: true, alert: "path-anomaly",
		doc: "forged path tail ends in the legit origin; first hop is the attacker",
	},
	{
		name: "exact-typeN", kind: hijack.PathFakeDeep, upstream: true,
		detect: false,
		doc:    "forged legit origin AND legit first hop — documented blind spot, must stay silent",
	},
	{
		name: "prepend-forgery", kind: hijack.PrependForgery, upstream: true,
		detect: true, alert: "path-anomaly",
		doc: "forged [victim victim] prepend tail that defeats naive Path[len-2] inference",
	},
	{
		name: "sub-prefix", kind: hijack.SubPrefix,
		detect: true, alert: "sub-prefix",
		doc: "more-specific slice announced by the attacker (wins LPM everywhere)",
	},
	{
		name: "sub-prefix-forged-origin", kind: hijack.SubPrefixForgedOrigin,
		detect: true, alert: "sub-prefix",
		doc: "hidden hijack: more-specific with a forged legit-origin tail",
	},
	{
		name: "squat", kind: hijack.Squat,
		detect: true, alert: "squat",
		doc: "covering super-prefix announced by the attacker",
	},
	{
		name: "route-leak", kind: hijack.RouteLeak,
		detect: false,
		doc:    "accuracy control: a transit re-exports the legit route; origin stays legit",
	},
	{
		name: "legit-moas", kind: hijack.LegitMOAS, partner: true,
		detect: false,
		doc:    "accuracy control: configured partner origin announces the owned prefix",
	},
	{
		name: "outage-hijack", kind: hijack.ExactOrigin, split: true,
		campaign: campaignOutage, detect: true, alert: "exact-origin",
		doc: "hijack during a feed outage: the covering source dies first",
	},
	{
		name: "reconfig-hijack", kind: hijack.SubPrefix,
		campaign: campaignReconfig, detect: true, alert: "sub-prefix",
		doc: "hijack across a config-swap barrier mid-incident",
	},
	{
		name: "remit-hijack", kind: hijack.ExactOrigin,
		campaign: campaignRemit, detect: true, alert: "exact-origin",
		doc: "hijack while a prior incident on another owned prefix is being mitigated",
	},
}

func (sc Scenario) spec() (classSpec, error) {
	for _, s := range classSpecs {
		if s.name == sc.Class {
			return s, nil
		}
	}
	return classSpec{}, fmt.Errorf("fleet: unknown class %q", sc.Class)
}

// Classes returns the taxonomy class names in scorecard order.
func Classes() []string {
	out := make([]string, len(classSpecs))
	for i, s := range classSpecs {
		out[i] = s.name
	}
	return out
}

// ClassDoc returns the one-line description of a class ("" if unknown).
func ClassDoc(class string) string {
	for _, s := range classSpecs {
		if s.name == class {
			return s.doc
		}
	}
	return ""
}

// Families returns the supported owned-set families.
func Families() []string { return []string{"v4", "v6", "mixed"} }

// familySet builds the owned set for a family. The mixed family
// alternates the attack target between the v4 and v6 member by seed
// parity, so a multi-seed run exercises both directions.
func familySet(family string, seed int64) (owned string, set []string, err error) {
	switch family {
	case "v4":
		set = []string{"10.0.0.0/23", "10.0.2.0/23"}
		return set[0], set, nil
	case "v6":
		set = []string{"2001:db8::/47", "2001:db8:2::/47"}
		return set[0], set, nil
	case "mixed":
		set = []string{"10.0.0.0/23", "2001:db8::/47"}
		return set[seed&1], set, nil
	default:
		return "", nil, fmt.Errorf("fleet: unknown family %q", family)
	}
}

// Topology scale of generated scenarios: the experiment suite's
// laptop-scale Internet. The shrinker may go below, to its own floors.
const (
	genStubs   = 100
	genTransit = 30
)

// Generate builds the scenario matrix: every class × family × seed in
// [baseSeed, baseSeed+seeds). The timing dimension (attack delay after
// convergence) is drawn deterministically from the hijack duration model,
// so campaigns spread over the feed-polling phase instead of always
// striking at t=0. Nil classes/families select the full taxonomy.
func Generate(classes, families []string, seeds int, baseSeed int64) ([]Scenario, error) {
	if classes == nil {
		classes = Classes()
	}
	if families == nil {
		families = Families()
	}
	if seeds < 1 {
		return nil, fmt.Errorf("fleet: seeds = %d, want >= 1", seeds)
	}
	var out []Scenario
	for _, class := range classes {
		for _, family := range families {
			for s := int64(0); s < int64(seeds); s++ {
				seed := baseSeed + s
				owned, set, err := familySet(family, seed)
				if err != nil {
					return nil, err
				}
				sc := Scenario{
					Class:       class,
					Family:      family,
					Seed:        seed,
					Owned:       owned,
					OwnedSet:    set,
					Stubs:       genStubs,
					Transit:     genTransit,
					HijackDelay: attackDelay(seed),
				}
				if _, err := sc.spec(); err != nil {
					return nil, err
				}
				out = append(out, sc)
			}
		}
	}
	return out, nil
}

// attackDelay derives the measured attack's post-convergence delay from
// the paper's hijack duration model, compressed to trial scale.
func attackDelay(seed int64) time.Duration {
	d := hijack.NewDurationModel(seed).Sample() / 20
	if d > 3*time.Minute {
		d = 3 * time.Minute
	}
	return d.Round(time.Second)
}
