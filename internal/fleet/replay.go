package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"artemis/internal/bgp"
	"artemis/internal/core"
	"artemis/internal/experiment"
	"artemis/internal/feeds/eventlog"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/prefix"
)

// Reproducer is a scenario frozen as a detector-level replay: the exact
// deduplicated event stream the pipeline saw (a sibling .evlog file) plus
// the detector configuration that classified it. Replaying feeds the
// events straight into a fresh core.Detector — no topology, no virtual
// time — so a shrunk failure, or a fixed one kept as regression corpus,
// re-runs in microseconds.
type Reproducer struct {
	Scenario Scenario    `json:"scenario"`
	Expect   Expectation `json:"expect"`
	// Verdict is what the capturing run earned ("ok" for regression
	// corpus entries recorded after a fix; a failure verdict for shrunk
	// bug reproducers).
	Verdict string `json:"verdict"`
	// Detector config snapshot. Topology-derived pieces (upstream policy,
	// mitigation self-announcements) cannot be recomputed from the
	// scenario alone, so they are pinned here.
	Owned            []string              `json:"owned"`
	LegitOrigins     []bgp.ASN             `json:"legit_origins"`
	AllowedUpstreams map[bgp.ASN][]bgp.ASN `json:"allowed_upstreams,omitempty"`
	Self             []string              `json:"self,omitempty"`
	// Events is the sibling .evlog file name (relative to the sidecar).
	Events string `json:"events"`
}

// Capture runs the scenario with a recorder teed into the pipeline's
// delivery path and writes `<name>.evlog` (the event stream) and
// `<name>.json` (the Reproducer sidecar) into dir.
func Capture(sc Scenario, dir, name string) (Reproducer, Result, error) {
	expect, err := sc.Expect()
	if err != nil {
		return Reproducer{}, Result{}, err
	}
	opts, err := sc.Options()
	if err != nil {
		return Reproducer{}, Result{}, err
	}
	steps, err := sc.steps()
	if err != nil {
		return Reproducer{}, Result{}, err
	}

	evName := name + ".evlog"
	f, err := os.Create(filepath.Join(dir, evName))
	if err != nil {
		return Reproducer{}, Result{}, err
	}
	bw := bufio.NewWriter(f)
	w := eventlog.NewWriter(bw)
	var mu sync.Mutex
	opts.DeliverTee = func(batch []feedtypes.Event) {
		mu.Lock()
		defer mu.Unlock()
		_ = w.WriteBatch(batch)
	}

	env, err := experiment.Build(opts)
	if err != nil {
		f.Close()
		return Reproducer{}, Result{}, err
	}
	tr, runErr := experiment.RunScript(env, steps)
	cfg := env.Artemis.CurrentConfig()
	self := cfg.Self.List()
	env.Close()
	if err := bw.Flush(); err != nil {
		f.Close()
		return Reproducer{}, Result{}, err
	}
	if err := f.Close(); err != nil {
		return Reproducer{}, Result{}, err
	}

	var res Result
	if runErr != nil {
		res = errResult(sc, expect, runErr)
	} else {
		res = evaluate(sc, expect, tr)
	}

	rep := Reproducer{
		Scenario:         sc,
		Expect:           expect,
		Verdict:          res.Verdict,
		LegitOrigins:     cfg.LegitOrigins,
		AllowedUpstreams: cfg.AllowedUpstreams,
		Events:           evName,
	}
	for _, p := range cfg.OwnedPrefixes {
		rep.Owned = append(rep.Owned, p.String())
	}
	// Mitigation may de-aggregate exactly onto an attacked prefix (a /24
	// sub-prefix hijack is re-announced as the same /24). Live, the alert
	// preceded that registration; a replayed Self set applies from event
	// one, so keeping the attack prefix would whitelist the hijack itself.
	attacked := map[prefix.Prefix]bool{}
	if aps, err := sc.attackPrefixes(); err == nil {
		for _, p := range aps {
			attacked[p] = true
		}
	}
	for _, p := range self {
		if !attacked[p] {
			rep.Self = append(rep.Self, p.String())
		}
	}
	sort.Strings(rep.Owned)
	sort.Strings(rep.Self)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return Reproducer{}, Result{}, err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(filepath.Join(dir, name+".json"), blob, 0o644); err != nil {
		return Reproducer{}, Result{}, err
	}
	return rep, res, nil
}

// LoadReproducer reads a sidecar written by Capture.
func LoadReproducer(path string) (Reproducer, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Reproducer{}, err
	}
	var rep Reproducer
	if err := json.Unmarshal(blob, &rep); err != nil {
		return Reproducer{}, fmt.Errorf("fleet: %s: %w", path, err)
	}
	return rep, nil
}

// Replay rebuilds the pinned detector config, streams the .evlog (found
// next to dir) through a fresh detector, and returns the alerts raised.
func (rep Reproducer) Replay(dir string) ([]core.Alert, error) {
	cfg := &core.Config{
		LegitOrigins:     rep.LegitOrigins,
		AllowedUpstreams: rep.AllowedUpstreams,
		Self:             core.NewSelfAnnounced(),
	}
	for _, s := range rep.Owned {
		p, err := prefix.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("fleet: reproducer owned %q: %w", s, err)
		}
		cfg.OwnedPrefixes = append(cfg.OwnedPrefixes, p)
	}
	for _, s := range rep.Self {
		p, err := prefix.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("fleet: reproducer self %q: %w", s, err)
		}
		cfg.Self.Add(p)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	f, err := os.Open(filepath.Join(dir, rep.Events))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	det := core.NewDetector(cfg)
	r := eventlog.NewReader(bufio.NewReader(f))
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("fleet: replay %s: %w", rep.Events, err)
		}
		det.Process(rec.Event)
	}
	return det.Alerts(), nil
}

// CheckExpect judges replayed alerts against the scenario expectation:
// silence classes must raise nothing; detection classes must raise at
// least one alert of the expected type. Nil means the expectation holds.
func (rep Reproducer) CheckExpect(alerts []core.Alert) error {
	if !rep.Expect.Detect {
		if len(alerts) != 0 {
			return fmt.Errorf("fleet: %s: expected silence, got %d alert(s), first %s on %s",
				rep.Scenario.Name(), len(alerts), alerts[0].Type, alerts[0].Prefix)
		}
		return nil
	}
	if len(alerts) == 0 {
		return fmt.Errorf("fleet: %s: expected a %s alert, got none", rep.Scenario.Name(), rep.Expect.Alert)
	}
	if rep.Expect.Alert == "" {
		return nil
	}
	for _, a := range alerts {
		if AlertName(a.Type.String()) == rep.Expect.Alert {
			return nil
		}
	}
	return fmt.Errorf("fleet: %s: no %s alert among %d raised (first %s)",
		rep.Scenario.Name(), rep.Expect.Alert, len(alerts), alerts[0].Type)
}
