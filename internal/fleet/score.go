package fleet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"artemis/internal/stats"
)

// ClassScore aggregates one class × family cell of the scorecard.
type ClassScore struct {
	Class        string `json:"class"`
	Family       string `json:"family"`
	Doc          string `json:"doc,omitempty"`
	ExpectDetect bool   `json:"expect_detect"`
	Trials       int    `json:"trials"`
	Detected     int    `json:"detected"`
	FN           int    `json:"fn"`
	FP           int    `json:"fp"`
	WrongType    int    `json:"wrong_type"`
	Errors       int    `json:"errors"`
	// Detection summarizes DetectionDelay over the detected trials
	// (virtual time; the paper's §3 headline is ≈45 s).
	Detection stats.DurationSummary `json:"detection"`
	// Total summarizes hijack→fully-mitigated over the detected trials.
	Total stats.DurationSummary `json:"total"`
}

// Scorecard is a fleet run's accuracy report: one row per class × family,
// plus the failing results verbatim (with their shrunk reproducers filled
// in by the caller, when shrinking is on).
type Scorecard struct {
	BaseSeed int64        `json:"base_seed"`
	Seeds    int          `json:"seeds"`
	Classes  []ClassScore `json:"classes"`
	Failures []Result     `json:"failures,omitempty"`
	Totals   ScoreTotals  `json:"totals"`
}

// ScoreTotals sums the accuracy counters across all cells.
type ScoreTotals struct {
	Trials    int `json:"trials"`
	Detected  int `json:"detected"`
	FN        int `json:"fn"`
	FP        int `json:"fp"`
	WrongType int `json:"wrong_type"`
	Errors    int `json:"errors"`
}

// Score aggregates results into a scorecard. Rows are sorted in taxonomy
// order (then family), so same results → same scorecard bytes.
func Score(results []Result, baseSeed int64, seeds int) Scorecard {
	type key struct{ class, family string }
	cells := map[key]*ClassScore{}
	detections := map[key][]time.Duration{}
	totals := map[key][]time.Duration{}
	card := Scorecard{BaseSeed: baseSeed, Seeds: seeds}

	for _, r := range results {
		k := key{r.Scenario.Class, r.Scenario.Family}
		cell := cells[k]
		if cell == nil {
			cell = &ClassScore{
				Class:        k.class,
				Family:       k.family,
				Doc:          ClassDoc(k.class),
				ExpectDetect: r.Expect.Detect,
			}
			cells[k] = cell
		}
		cell.Trials++
		card.Totals.Trials++
		if r.Trial.Detected {
			cell.Detected++
			card.Totals.Detected++
			detections[k] = append(detections[k], r.Trial.DetectionDelay)
			if r.Trial.Total > 0 {
				totals[k] = append(totals[k], r.Trial.Total)
			}
		}
		switch r.Verdict {
		case VerdictFN:
			cell.FN++
			card.Totals.FN++
		case VerdictFP:
			cell.FP++
			card.Totals.FP++
		case VerdictWrongType:
			cell.WrongType++
			card.Totals.WrongType++
		case VerdictError:
			cell.Errors++
			card.Totals.Errors++
		}
		if r.Failed() {
			card.Failures = append(card.Failures, r)
		}
	}

	order := map[string]int{}
	for i, c := range Classes() {
		order[c] = i
	}
	for k, cell := range cells {
		cell.Detection = stats.SummarizeDurations(detections[k])
		cell.Total = stats.SummarizeDurations(totals[k])
		card.Classes = append(card.Classes, *cell)
	}
	sort.Slice(card.Classes, func(i, j int) bool {
		a, b := card.Classes[i], card.Classes[j]
		if a.Class != b.Class {
			return order[a.Class] < order[b.Class]
		}
		return a.Family < b.Family
	})
	sort.Slice(card.Failures, func(i, j int) bool {
		return card.Failures[i].Scenario.Name() < card.Failures[j].Scenario.Name()
	})
	return card
}

// Gate is one accuracy bound: a class metric that must stay <= Max.
// Class "*" applies to the cross-class totals. Metrics are aggregated
// over families: counters sum, latency metrics take the worst cell.
type Gate struct {
	Class  string
	Metric string
	Max    float64
}

// ParseGates reads a gates file (the fleet.gates format, mirroring
// bench.gates): one `<class> <metric> <= <value>` rule per line, #
// comments and blank lines ignored.
func ParseGates(r io.Reader) ([]Gate, error) {
	var gates []Gate
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 || fields[2] != "<=" {
			return nil, fmt.Errorf("gates line %d: want `<class> <metric> <= <value>`, got %q", line, text)
		}
		val, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("gates line %d: bad value %q: %v", line, fields[3], err)
		}
		gates = append(gates, Gate{Class: fields[0], Metric: fields[1], Max: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return gates, nil
}

// metric extracts a gate metric aggregated across the class's family
// cells (or the totals for class "*").
func (card Scorecard) metric(class, name string) (float64, error) {
	if class == "*" {
		switch name {
		case "fn":
			return float64(card.Totals.FN), nil
		case "fp":
			return float64(card.Totals.FP), nil
		case "wrong_type":
			return float64(card.Totals.WrongType), nil
		case "errors":
			return float64(card.Totals.Errors), nil
		}
		return 0, fmt.Errorf("unknown totals metric %q", name)
	}
	var sum float64
	var worst time.Duration
	found := false
	for _, cell := range card.Classes {
		if cell.Class != class {
			continue
		}
		found = true
		switch name {
		case "fn":
			sum += float64(cell.FN)
		case "fp":
			sum += float64(cell.FP)
		case "wrong_type":
			sum += float64(cell.WrongType)
		case "errors":
			sum += float64(cell.Errors)
		case "detection_p90_ms":
			if cell.Detection.P90 > worst {
				worst = cell.Detection.P90
			}
		case "detection_max_ms":
			if cell.Detection.Max > worst {
				worst = cell.Detection.Max
			}
		default:
			return 0, fmt.Errorf("unknown metric %q", name)
		}
	}
	if !found {
		return 0, fmt.Errorf("no scorecard rows for class %q", class)
	}
	if strings.HasSuffix(name, "_ms") {
		return float64(worst) / float64(time.Millisecond), nil
	}
	return sum, nil
}

// Check evaluates the gates and returns one violation message per broken
// bound (empty = all green). A gate referencing a class absent from the
// run is itself a violation — a silently skipped gate is how accuracy
// regressions sneak in.
func (card Scorecard) Check(gates []Gate) []string {
	var bad []string
	for _, g := range gates {
		got, err := card.metric(g.Class, g.Metric)
		if err != nil {
			bad = append(bad, fmt.Sprintf("gate %s %s: %v", g.Class, g.Metric, err))
			continue
		}
		if got > g.Max {
			bad = append(bad, fmt.Sprintf("gate %s %s: %.6g > %.6g", g.Class, g.Metric, got, g.Max))
		}
	}
	return bad
}
