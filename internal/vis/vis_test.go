package vis

import (
	"strings"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/core"
	"artemis/internal/topo"
)

func samples() []core.Sample {
	return []core.Sample{
		{Time: 0, LegitVPs: 4},
		{Time: time.Minute, LegitVPs: 2, HijackedVPs: 2},
		{Time: 2 * time.Minute, LegitVPs: 1, HijackedVPs: 3},
		{Time: 5 * time.Minute, LegitVPs: 4},
	}
}

func TestTimelineRenders(t *testing.T) {
	out := Timeline(samples(), 40, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // 8 rows + axis + labels
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no bars drawn")
	}
	// The dip must be visible: top row has gaps.
	top := lines[0]
	if !strings.Contains(top, "#") || !strings.Contains(strings.TrimRight(top[3:], " "), " ") {
		t.Fatalf("top row should show the dip: %q", top)
	}
}

func TestTimelineDegenerate(t *testing.T) {
	if !strings.Contains(Timeline(nil, 40, 8), "no samples") {
		t.Fatal("empty samples not handled")
	}
	one := []core.Sample{{Time: time.Second, LegitVPs: 1}}
	if Timeline(one, 40, 8) == "" {
		t.Fatal("single sample broke the chart")
	}
}

func TestWorldMapMarkers(t *testing.T) {
	tp := topo.New()
	tp.AddAS(1)
	tp.AddAS(2)
	tp.AddAS(3)
	tp.SetGeo(1, topo.GeoPoint{Lat: 50, Lon: 10})   // Europe, legit
	tp.SetGeo(2, topo.GeoPoint{Lat: 40, Lon: -100}) // NA, hijacked
	tp.SetGeo(3, topo.GeoPoint{Lat: -25, Lon: 135}) // Oceania, unknown
	origins := map[bgp.ASN][]bgp.ASN{
		1: {61000},
		2: {61000, 64666},
		3: {0},
	}
	legit := map[bgp.ASN]bool{61000: true}
	out := WorldMap(tp, origins, legit, 72, 18)
	if !strings.Contains(out, "o") || !strings.Contains(out, "X") || !strings.Contains(out, ".") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestWorldMapBadDims(t *testing.T) {
	tp := topo.New()
	if WorldMap(tp, nil, nil, 1, 1) == "" {
		t.Fatal("bad dims not defaulted")
	}
}

func TestTimelineReport(t *testing.T) {
	out := TimelineReport(samples())
	if !strings.Contains(out, "25%") || !strings.Contains(out, "100%") {
		t.Fatalf("report:\n%s", out)
	}
	if !strings.Contains(TimelineReport(nil), "no monitoring data") {
		t.Fatal("empty report not handled")
	}
}
