// Package vis renders the demo of §4: a real-time view of how a hijack
// propagates through the Internet and how mitigation claws it back. Two
// renderings, both plain text so they work in any terminal:
//
//   - Timeline: the fraction of vantage points selecting the legitimate
//     origin over time, as an ASCII strip chart;
//   - WorldMap: vantage points plotted by latitude/longitude, each marked
//     with whether it currently routes to the legitimate AS ('o'), the
//     hijacker ('X'), or is unknown ('.').
package vis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/core"
	"artemis/internal/topo"
)

// Timeline renders monitor samples as an ASCII strip chart of the legit
// fraction (height rows tall, at most width columns wide).
func Timeline(samples []core.Sample, width, height int) string {
	if len(samples) == 0 || width < 2 || height < 2 {
		return "(no samples)\n"
	}
	start, end := samples[0].Time, samples[len(samples)-1].Time
	if end <= start {
		end = start + time.Second
	}
	// Resample: for each column take the last sample at or before the
	// column's time.
	cols := make([]float64, width)
	idx := 0
	for c := 0; c < width; c++ {
		t := start + time.Duration(float64(end-start)*float64(c)/float64(width-1))
		for idx+1 < len(samples) && samples[idx+1].Time <= t {
			idx++
		}
		cols[c] = samples[idx].FractionLegit()
	}
	var b strings.Builder
	for row := height - 1; row >= 0; row-- {
		lo := float64(row) / float64(height)
		label := " "
		if row == height-1 {
			label = "1"
		} else if row == 0 {
			label = "0"
		}
		b.WriteString(label + " |")
		for _, v := range cols {
			if v > lo {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "   %-12v%*v\n", start.Round(time.Second), width-12, end.Round(time.Second))
	return b.String()
}

// WorldMap plots vantage points on a lat/lon grid. origins maps each VP to
// the per-probe origins the monitor reported (see Monitor.VPOrigins);
// legit is the set of legitimate origins.
func WorldMap(tp *topo.Topology, origins map[bgp.ASN][]bgp.ASN, legit map[bgp.ASN]bool, width, height int) string {
	if width < 10 || height < 5 {
		width, height = 72, 18
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	vps := make([]bgp.ASN, 0, len(origins))
	for vp := range origins {
		vps = append(vps, vp)
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	for _, vp := range vps {
		g, ok := tp.Geo(vp)
		if !ok {
			continue
		}
		x := int((g.Lon + 180) / 360 * float64(width-1))
		y := int((90 - g.Lat) / 180 * float64(height-1))
		if x < 0 || x >= width || y < 0 || y >= height {
			continue
		}
		grid[y][x] = marker(origins[vp], legit)
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	b.WriteString("  o legitimate origin   X hijacked   . no data\n")
	return b.String()
}

func marker(origins []bgp.ASN, legit map[bgp.ASN]bool) byte {
	known := false
	for _, o := range origins {
		if o == 0 {
			continue
		}
		known = true
		if !legit[o] {
			return 'X'
		}
	}
	if !known {
		return '.'
	}
	return 'o'
}

// TimelineReport is a compact textual summary of a hijack incident.
func TimelineReport(samples []core.Sample) string {
	if len(samples) == 0 {
		return "(no monitoring data)\n"
	}
	var b strings.Builder
	worst := samples[0]
	for _, s := range samples {
		if s.FractionLegit() < worst.FractionLegit() {
			worst = s
		}
	}
	last := samples[len(samples)-1]
	fmt.Fprintf(&b, "monitoring samples: %d\n", len(samples))
	fmt.Fprintf(&b, "worst moment:       %.0f%% of VPs legit at %v (%d hijacked)\n",
		100*worst.FractionLegit(), worst.Time.Round(time.Second), worst.HijackedVPs)
	fmt.Fprintf(&b, "final state:        %.0f%% of VPs legit at %v\n",
		100*last.FractionLegit(), last.Time.Round(time.Second))
	return b.String()
}
