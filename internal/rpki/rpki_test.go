package rpki

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

func asn(v uint32) bgp.ASN { return bgp.ASN(v) }

func table(t *testing.T) *Table {
	t.Helper()
	tb := NewTable()
	tb.AddROA(ROA{Prefix: prefix.MustParse("10.0.0.0/16"), ASN: 64500, MaxLength: 24})
	tb.AddROA(ROA{Prefix: prefix.MustParse("10.1.0.0/16"), ASN: 64501}) // maxLength defaults to 16
	tb.AddROA(ROA{Prefix: prefix.MustParse("2001:db8::/32"), ASN: 64500, MaxLength: 48})
	return tb
}

func TestValidate(t *testing.T) {
	tb := table(t)
	cases := []struct {
		p      string
		origin uint32
		want   Validity
	}{
		{"10.0.0.0/16", 64500, Valid},
		{"10.0.1.0/24", 64500, Valid},   // within maxLength
		{"10.0.1.0/25", 64500, Invalid}, // longer than maxLength
		{"10.0.0.0/16", 666, Invalid},   // covered, wrong origin
		{"10.1.0.0/16", 64501, Valid},
		{"10.1.2.0/24", 64501, Invalid}, // maxLength defaulted to 16
		{"10.9.0.0/16", 64500, NotFound},
		{"192.0.2.0/24", 666, NotFound},
		{"2001:db8:1::/48", 64500, Valid},
		{"2001:db8:1::/56", 64500, Invalid},
		{"2001:db8::/32", 666, Invalid},
		{"2001:db9::/32", 666, NotFound},
	}
	for _, c := range cases {
		if got := tb.Validate(prefix.MustParse(c.p), asn(c.origin)); got != c.want {
			t.Errorf("Validate(%s, AS%d) = %v, want %v", c.p, c.origin, got, c.want)
		}
	}
	nf, v, inv := tb.VerdictCounts()
	if nf != 3 || v != 4 || inv != 5 {
		t.Fatalf("verdict counts = %d,%d,%d", nf, v, inv)
	}
}

func TestValidAnywhereWins(t *testing.T) {
	// RFC 6811: one matching ROA makes the route valid even when another
	// covering ROA names a different origin.
	tb := NewTable()
	tb.AddROA(ROA{Prefix: prefix.MustParse("10.0.0.0/8"), ASN: 1, MaxLength: 24})
	tb.AddROA(ROA{Prefix: prefix.MustParse("10.0.0.0/16"), ASN: 2, MaxLength: 24})
	if got := tb.Validate(prefix.MustParse("10.0.0.0/24"), 2); got != Valid {
		t.Fatalf("verdict = %v, want valid", got)
	}
	if got := tb.Validate(prefix.MustParse("10.0.0.0/24"), 3); got != Invalid {
		t.Fatalf("verdict = %v, want invalid", got)
	}
}

func TestNilTable(t *testing.T) {
	var tb *Table
	if got := tb.Validate(prefix.MustParse("10.0.0.0/24"), 1); got != NotFound {
		t.Fatalf("nil table verdict = %v", got)
	}
	if tb.Len() != 0 {
		t.Fatal("nil table Len != 0")
	}
}

func TestValidityString(t *testing.T) {
	if Valid.String() != "valid" || Invalid.String() != "invalid" || NotFound.String() != "unknown" {
		t.Fatal("verdict strings wrong")
	}
}

const exportJSON = `{"roas": [
	{"asn": "AS64500", "prefix": "10.0.0.0/16", "maxLength": 24},
	{"asn": 64501, "prefix": "10.1.0.0/16", "maxLength": 0},
	{"asn": "64500", "prefix": "2001:db8::/32", "maxLength": 48}
]}`

func TestParseExport(t *testing.T) {
	tb, err := Parse([]byte(exportJSON))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if got := tb.Validate(prefix.MustParse("10.0.3.0/24"), 64500); got != Valid {
		t.Fatalf("verdict = %v", got)
	}
	if _, err := Parse([]byte(`{"roas":[{"asn":"ASX","prefix":"10.0.0.0/8"}]}`)); err == nil {
		t.Fatal("bad asn accepted")
	}
	if _, err := Parse([]byte(`{"roas":[{"asn":1,"prefix":"10.0.0.0/99"}]}`)); err == nil {
		t.Fatal("bad prefix accepted")
	}
}

func TestFetch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(exportJSON))
	}))
	defer srv.Close()
	tb, err := Fetch(srv.URL, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer bad.Close()
	if _, err := Fetch(bad.URL, 5*time.Second); err == nil {
		t.Fatal("non-200 accepted")
	}
}
