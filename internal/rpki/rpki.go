// Package rpki implements RPKI route-origin validation (RFC 6811): a table
// of validated ROA payloads and the valid / invalid / not-found verdict for
// an (origin AS, prefix) pair.
//
// In ARTEMIS terms this is a fast, authoritative pre-filter: a ROA-valid
// announcement cannot be an origin hijack of the operator's space, so the
// detector rejects it before alert bookkeeping, and a ROA-invalid verdict
// rides along as evidence when an alert does fire — naming not just "wrong
// origin" but "origin the RPKI says may not announce this prefix".
package rpki

import (
	"sync/atomic"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

// Validity is an RFC 6811 origin-validation verdict.
type Validity uint8

const (
	// NotFound: no ROA covers the prefix — the default for most of the
	// Internet, carrying no signal either way.
	NotFound Validity = iota
	// Valid: a covering ROA authorizes the origin at this prefix length.
	Valid
	// Invalid: at least one ROA covers the prefix but none authorizes the
	// (origin, length) pair.
	Invalid
)

func (v Validity) String() string {
	switch v {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return "unknown"
	}
}

// ROA is one validated ROA payload: origin may announce prefix at lengths
// up to MaxLength.
type ROA struct {
	Prefix    prefix.Prefix
	ASN       bgp.ASN
	MaxLength int
}

// Table holds ROAs indexed for covering-prefix search. Build it once
// (AddROA during construction), then treat it as immutable: concurrent
// readers share it without locking, and a refresh swaps in a new table.
type Table struct {
	trie *prefix.Trie[[]ROA]
	n    int
	// verdict counters, by Validity index; atomics so the immutable table
	// can still account for its use on concurrent hot paths.
	verdicts [3]atomic.Int64
}

// NewTable returns an empty ROA table.
func NewTable() *Table {
	return &Table{trie: prefix.NewTrie[[]ROA]()}
}

// AddROA inserts one payload. A MaxLength below the prefix length (or
// unset, 0) defaults to the prefix length, per RFC 6482 semantics.
func (t *Table) AddROA(r ROA) {
	if r.MaxLength < r.Prefix.Bits() {
		r.MaxLength = r.Prefix.Bits()
	}
	existing, _ := t.trie.Get(r.Prefix)
	t.trie.Insert(r.Prefix, append(existing, r))
	t.n++
}

// Len returns the number of ROAs in the table.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Validate renders the RFC 6811 verdict for origin announcing p. A nil
// table validates nothing and answers NotFound.
func (t *Table) Validate(p prefix.Prefix, origin bgp.ASN) Validity {
	if t == nil {
		return NotFound
	}
	v := NotFound
	t.trie.Supernets(p, func(_ prefix.Prefix, roas []ROA) bool {
		for _, roa := range roas {
			// Supernets already guarantees coverage of p's address bits.
			v = Invalid
			if roa.ASN == origin && p.Bits() <= roa.MaxLength {
				v = Valid
				return false
			}
		}
		return true
	})
	t.verdicts[v].Add(1)
	return v
}

// VerdictCounts returns how many Validate calls answered notFound / valid /
// invalid since the table was built (a refresh swap resets them with the
// table).
func (t *Table) VerdictCounts() (notFound, valid, invalid int64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.verdicts[NotFound].Load(), t.verdicts[Valid].Load(), t.verdicts[Invalid].Load()
}
