package rpki

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

// The export format shared by routinator, rpki-client and RIPE's validator:
//
//	{"roas": [{"asn": "AS13335", "prefix": "1.0.0.0/24", "maxLength": 24}]}
//
// with asn accepted as "AS13335", "13335" or a bare number.
type roaExport struct {
	ROAs []roaJSON `json:"roas"`
}

type roaJSON struct {
	ASN       asnField `json:"asn"`
	Prefix    string   `json:"prefix"`
	MaxLength int      `json:"maxLength"`
}

type asnField bgp.ASN

func (a *asnField) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	s = strings.TrimPrefix(strings.TrimPrefix(s, "AS"), "as")
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return fmt.Errorf("rpki: bad asn %s", string(b))
	}
	*a = asnField(v)
	return nil
}

// Parse builds a table from a JSON ROA export.
func Parse(data []byte) (*Table, error) {
	var exp roaExport
	if err := json.Unmarshal(data, &exp); err != nil {
		return nil, fmt.Errorf("rpki: parse export: %w", err)
	}
	t := NewTable()
	for i, r := range exp.ROAs {
		p, err := prefix.Parse(r.Prefix)
		if err != nil {
			return nil, fmt.Errorf("rpki: roa %d: %w", i, err)
		}
		t.AddROA(ROA{Prefix: p, ASN: bgp.ASN(r.ASN), MaxLength: r.MaxLength})
	}
	return t, nil
}

// LoadFile builds a table from a JSON export on disk.
func LoadFile(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// maxExportBytes bounds a fetched export (a full global export is ~100MB;
// the cap keeps a misbehaving endpoint from exhausting memory).
const maxExportBytes = 1 << 29

// Fetch builds a table from a REST endpoint serving the JSON export (e.g.
// a local routinator's /json). The client enforces the given timeout.
func Fetch(url string, timeout time.Duration) (*Table, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	cli := &http.Client{Timeout: timeout}
	resp, err := cli.Get(url)
	if err != nil {
		return nil, fmt.Errorf("rpki: fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rpki: fetch %s: status %s", url, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxExportBytes))
	if err != nil {
		return nil, fmt.Errorf("rpki: fetch %s: %w", url, err)
	}
	return Parse(data)
}
