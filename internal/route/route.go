// Package route implements the BGP route selection machinery of a single
// AS: candidate routes learned from neighbors (Adj-RIB-In), the Gao–Rexford
// decision process that picks a best route per prefix (Loc-RIB), and the
// valley-free export policy that decides which neighbors may hear about it.
//
// The decision process is the standard economic model of inter-domain
// routing: prefer routes through customers (they pay us) over peers (free)
// over providers (we pay), then shorter AS paths, then a deterministic
// tiebreak. Longest-prefix match lives on top of this per-prefix selection
// and is what ARTEMIS's de-aggregation mitigation exploits.
package route

import (
	"fmt"
	"slices"
	"strings"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/topo"
)

// Route is one candidate path for a prefix as known by a specific AS.
type Route struct {
	Prefix prefix.Prefix
	// Path is the AS path as received: Path[0] is the neighbor that sent
	// it, Path[len-1] the origin. Empty for locally originated routes.
	Path []bgp.ASN
	// From is the neighbor the route was learned from; 0 for local routes.
	From bgp.ASN
	// Rel is the business relationship of From (meaningless when local).
	Rel topo.Rel
}

// Local reports whether the route is locally originated.
func (r *Route) Local() bool { return r.From == 0 }

// Origin returns the origin AS. self is the owning AS, returned for
// locally originated routes.
func (r *Route) Origin(self bgp.ASN) bgp.ASN {
	if len(r.Path) == 0 {
		return self
	}
	return r.Path[len(r.Path)-1]
}

// LocalPref is the Gao–Rexford preference class of the route.
func (r *Route) LocalPref() int {
	if r.Local() {
		return 400
	}
	switch r.Rel {
	case topo.Customer:
		return 300
	case topo.Peer:
		return 200
	default: // provider
		return 100
	}
}

// Equal reports whether two routes carry identical content: same prefix,
// same AS path, learned from the same neighbor under the same relationship.
// A duplicate UPDATE re-announcing an unchanged route is Equal to the
// installed candidate even though it arrives as a distinct allocation.
func (r *Route) Equal(o *Route) bool {
	if r == nil || o == nil {
		return r == o
	}
	return r.Prefix == o.Prefix && r.From == o.From && r.Rel == o.Rel &&
		slices.Equal(r.Path, o.Path)
}

// HasLoop reports whether asn already appears in the AS path — the RFC 4271
// loop-prevention check applied on receipt.
func (r *Route) HasLoop(asn bgp.ASN) bool {
	for _, a := range r.Path {
		if a == asn {
			return true
		}
	}
	return false
}

func (r *Route) String() string {
	if r == nil {
		return "<none>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s via", r.Prefix)
	if r.Local() {
		b.WriteString(" local")
		return b.String()
	}
	for _, a := range r.Path {
		fmt.Fprintf(&b, " %d", uint32(a))
	}
	return b.String()
}

// Better reports whether a is preferred over b under the decision process.
// Both must be non-nil candidates for the same prefix.
//
// Order: higher local-pref (customer > peer > provider), then shorter AS
// path, then lowest neighbor ASN as a deterministic tiebreak (standing in
// for router-ID comparison).
func Better(a, b *Route) bool {
	if la, lb := a.LocalPref(), b.LocalPref(); la != lb {
		return la > lb
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	return a.From < b.From
}

// Exportable reports whether a route may be advertised to a neighbor with
// relationship rel, under valley-free (Gao–Rexford) export:
//
//   - locally originated and customer-learned routes go to everyone;
//   - peer- and provider-learned routes go to customers only.
func Exportable(r *Route, rel topo.Rel) bool {
	if r.Local() || r.Rel == topo.Customer {
		return true
	}
	return rel == topo.Customer
}
