package route

import (
	"slices"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
)

// Table is the routing table of one AS: per-prefix candidate sets plus the
// selected best route, indexed in a radix trie for longest-prefix match.
type Table struct {
	self     bgp.ASN
	prefixes map[prefix.Prefix]*prefixState
	best     *prefix.Trie[*Route]
}

type prefixState struct {
	candidates map[bgp.ASN]*Route // keyed by From (0 = local)
	best       *Route
}

// NewTable returns an empty table for the AS with the given number.
func NewTable(self bgp.ASN) *Table {
	return &Table{
		self:     self,
		prefixes: make(map[prefix.Prefix]*prefixState),
		best:     prefix.NewTrie[*Route](),
	}
}

// Self returns the owning ASN.
func (t *Table) Self() bgp.ASN { return t.self }

// Update installs or replaces the candidate route from r.From for r.Prefix
// and re-runs selection. It returns the previous and new best routes and
// whether the best route changed. Routes containing the local ASN in their
// path are rejected by the caller (Node), not here.
func (t *Table) Update(r *Route) (old, best *Route, changed bool) {
	st := t.prefixes[r.Prefix]
	if st == nil {
		st = &prefixState{candidates: make(map[bgp.ASN]*Route)}
		t.prefixes[r.Prefix] = st
	}
	st.candidates[r.From] = r
	return t.reselect(r.Prefix, st)
}

// Withdraw removes the candidate learned from the given neighbor (0 for a
// locally originated route) and re-runs selection.
func (t *Table) Withdraw(p prefix.Prefix, from bgp.ASN) (old, best *Route, changed bool) {
	st := t.prefixes[p]
	if st == nil {
		return nil, nil, false
	}
	if _, ok := st.candidates[from]; !ok {
		return st.best, st.best, false
	}
	delete(st.candidates, from)
	old, best, changed = t.reselect(p, st)
	if len(st.candidates) == 0 {
		delete(t.prefixes, p)
	}
	return old, best, changed
}

// Originate installs a locally originated route for p.
func (t *Table) Originate(p prefix.Prefix) (old, best *Route, changed bool) {
	return t.Update(&Route{Prefix: p})
}

// OriginateWithPath installs a locally originated route for p whose AS path
// already carries the given suffix (origin last) — the forged-origination
// primitive behind type-1/type-N hijacks and prepend forgery. The router
// prepends its own ASN on export exactly as for an honest origination, so
// downstream ASes see [self, suffix...] and attribute the prefix to
// suffix's last hop. An empty suffix is an honest Originate.
func (t *Table) OriginateWithPath(p prefix.Prefix, suffix []bgp.ASN) (old, best *Route, changed bool) {
	return t.Update(&Route{Prefix: p, Path: slices.Clone(suffix)})
}

// WithdrawLocal removes the local origination of p.
func (t *Table) WithdrawLocal(p prefix.Prefix) (old, best *Route, changed bool) {
	return t.Withdraw(p, 0)
}

func (t *Table) reselect(p prefix.Prefix, st *prefixState) (old, best *Route, changed bool) {
	old = st.best
	for _, cand := range st.candidates {
		if best == nil || Better(cand, best) {
			best = cand
		}
	}
	st.best = best
	if best == old {
		return old, best, false
	}
	// A content-identical re-announcement arrives as a fresh allocation, so
	// the pointer compare above misses it; without this check every duplicate
	// UPDATE (common in real feeds, guaranteed under RIB reload) would
	// reinsert into the trie and re-propagate downstream.
	if best.Equal(old) {
		return old, best, false
	}
	if best == nil {
		t.best.Delete(p)
	} else {
		t.best.Insert(p, best)
	}
	return old, best, true
}

// Best returns the selected route for exactly p.
func (t *Table) Best(p prefix.Prefix) (*Route, bool) {
	st := t.prefixes[p]
	if st == nil || st.best == nil {
		return nil, false
	}
	return st.best, true
}

// Candidates returns all candidate routes for p (selection input), in no
// particular order.
func (t *Table) Candidates(p prefix.Prefix) []*Route {
	st := t.prefixes[p]
	if st == nil {
		return nil
	}
	out := make([]*Route, 0, len(st.candidates))
	for _, r := range st.candidates {
		out = append(out, r)
	}
	return out
}

// NumCandidates returns the number of candidate routes for exactly p
// without allocating (Candidates copies; counters only need the size).
func (t *Table) NumCandidates(p prefix.Prefix) int {
	st := t.prefixes[p]
	if st == nil {
		return 0
	}
	return len(st.candidates)
}

// Resolve performs longest-prefix-match forwarding for addr and returns the
// best route of the most specific covering prefix. This is "where does my
// traffic for this address actually go" — the data-plane question behind
// hijack impact and mitigation success.
func (t *Table) Resolve(addr prefix.Addr) (*Route, bool) {
	_, r, ok := t.best.LongestMatch(addr)
	if !ok || r == nil {
		return nil, false
	}
	return r, true
}

// ResolveOrigin returns the origin AS currently receiving traffic for addr
// from this AS's viewpoint.
func (t *Table) ResolveOrigin(addr prefix.Addr) (bgp.ASN, bool) {
	r, ok := t.Resolve(addr)
	if !ok {
		return 0, false
	}
	return r.Origin(t.self), true
}

// ResolveBestFor returns the best route of the most specific selected
// prefix that contains p (or is p itself) — what "show ip bgp <prefix>"
// answers on a router when the exact prefix is absent.
func (t *Table) ResolveBestFor(p prefix.Prefix) (*Route, bool) {
	_, r, ok := t.best.LongestMatchPrefix(p)
	if !ok || r == nil {
		return nil, false
	}
	return r, true
}

// WalkCovered visits the selected best routes of all prefixes contained in
// p (p itself included when present) — the "longer-prefixes" form of a
// looking-glass query, which is how a monitor notices sub-prefix hijacks.
func (t *Table) WalkCovered(p prefix.Prefix, fn func(*Route) bool) {
	t.best.CoveredBy(p, func(_ prefix.Prefix, r *Route) bool { return fn(r) })
}

// WalkBest visits every selected best route in trie order.
func (t *Table) WalkBest(fn func(*Route) bool) {
	t.best.Walk(func(_ prefix.Prefix, r *Route) bool { return fn(r) })
}

// Len returns the number of prefixes with at least one candidate.
func (t *Table) Len() int { return len(t.prefixes) }
