package route

import (
	"testing"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/topo"
)

func TestTableUpdateSelectsBest(t *testing.T) {
	tb := NewTable(42)
	p := "10.0.0.0/23"
	_, best, changed := tb.Update(mk(p, 3, topo.Provider, 3, 9))
	if !changed || best.From != 3 {
		t.Fatalf("first update: best=%v changed=%v", best, changed)
	}
	_, best, changed = tb.Update(mk(p, 1, topo.Customer, 1, 9))
	if !changed || best.From != 1 {
		t.Fatalf("customer route should take over: %v %v", best, changed)
	}
	// A worse route arriving must not change the best.
	_, best, changed = tb.Update(mk(p, 2, topo.Peer, 2, 9))
	if changed || best.From != 1 {
		t.Fatalf("peer route should not displace customer: %v %v", best, changed)
	}
	if len(tb.Candidates(prefix.MustParse(p))) != 3 {
		t.Fatalf("candidates = %d, want 3", len(tb.Candidates(prefix.MustParse(p))))
	}
}

func TestTableReplaceFromSameNeighbor(t *testing.T) {
	tb := NewTable(42)
	p := "10.0.0.0/23"
	tb.Update(mk(p, 1, topo.Customer, 1, 9))
	// Same neighbor re-announces with a longer path: implicit replacement.
	_, best, _ := tb.Update(mk(p, 1, topo.Customer, 1, 5, 9))
	if len(best.Path) != 3 {
		t.Fatalf("replacement not applied: %v", best)
	}
	if got := len(tb.Candidates(prefix.MustParse(p))); got != 1 {
		t.Fatalf("candidates = %d, want 1 (implicit withdraw)", got)
	}
}

func TestTableWithdraw(t *testing.T) {
	tb := NewTable(42)
	p := prefix.MustParse("10.0.0.0/23")
	tb.Update(mk(p.String(), 1, topo.Customer, 1, 9))
	tb.Update(mk(p.String(), 2, topo.Peer, 2, 9))
	old, best, changed := tb.Withdraw(p, 1)
	if !changed || old.From != 1 || best.From != 2 {
		t.Fatalf("withdraw best: old=%v best=%v changed=%v", old, best, changed)
	}
	_, best, changed = tb.Withdraw(p, 2)
	if !changed || best != nil {
		t.Fatalf("last withdraw: best=%v changed=%v", best, changed)
	}
	if tb.Len() != 0 {
		t.Fatalf("table should be empty, Len=%d", tb.Len())
	}
	// Withdrawing absent state is a no-op.
	if _, _, changed := tb.Withdraw(p, 7); changed {
		t.Fatal("withdraw of unknown prefix reported change")
	}
}

func TestTableWithdrawNonBestDoesNotChange(t *testing.T) {
	tb := NewTable(42)
	p := prefix.MustParse("10.0.0.0/23")
	tb.Update(mk(p.String(), 1, topo.Customer, 1, 9))
	tb.Update(mk(p.String(), 2, topo.Peer, 2, 9))
	_, best, changed := tb.Withdraw(p, 2)
	if changed || best.From != 1 {
		t.Fatalf("withdrawing non-best changed selection: %v %v", best, changed)
	}
}

func TestTableOriginateWins(t *testing.T) {
	tb := NewTable(42)
	p := prefix.MustParse("10.0.0.0/23")
	tb.Update(mk(p.String(), 1, topo.Customer, 1, 9))
	_, best, changed := tb.Originate(p)
	if !changed || !best.Local() {
		t.Fatalf("local origination should be best: %v", best)
	}
	if best.Origin(tb.Self()) != 42 {
		t.Fatalf("origin = %v", best.Origin(tb.Self()))
	}
	_, best, changed = tb.WithdrawLocal(p)
	if !changed || best.From != 1 {
		t.Fatalf("withdraw local should fall back: %v", best)
	}
}

func TestTableResolveLongestMatch(t *testing.T) {
	tb := NewTable(42)
	tb.Update(mk("10.0.0.0/23", 1, topo.Customer, 1, 9)) // hijacker at 9? no: origin 9
	tb.Update(mk("10.0.0.0/24", 2, topo.Provider, 2, 7)) // more specific via provider
	addr := prefix.MustParseAddr("10.0.0.55")
	origin, ok := tb.ResolveOrigin(addr)
	if !ok || origin != 7 {
		t.Fatalf("ResolveOrigin = %v,%v; longest match must win regardless of preference", origin, ok)
	}
	// Address only covered by the /23.
	origin, ok = tb.ResolveOrigin(prefix.MustParseAddr("10.0.1.55"))
	if !ok || origin != 9 {
		t.Fatalf("ResolveOrigin /23 side = %v,%v", origin, ok)
	}
	if _, ok := tb.ResolveOrigin(prefix.MustParseAddr("11.0.0.1")); ok {
		t.Fatal("uncovered address resolved")
	}
}

func TestTableResolveAfterWithdraw(t *testing.T) {
	tb := NewTable(42)
	tb.Update(mk("10.0.0.0/24", 2, topo.Provider, 2, 7))
	tb.Withdraw(prefix.MustParse("10.0.0.0/24"), 2)
	if _, ok := tb.Resolve(prefix.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("resolve after withdraw should miss")
	}
}

func TestWalkBest(t *testing.T) {
	tb := NewTable(42)
	tb.Update(mk("10.0.0.0/23", 1, topo.Customer, 1, 9))
	tb.Update(mk("192.168.0.0/16", 1, topo.Customer, 1, 9))
	n := 0
	tb.WalkBest(func(r *Route) bool { n++; return true })
	if n != 2 {
		t.Fatalf("WalkBest visited %d", n)
	}
	n = 0
	tb.WalkBest(func(r *Route) bool { n++; return false })
	if n != 1 {
		t.Fatal("WalkBest did not stop early")
	}
}

func TestBestIsStableIdentity(t *testing.T) {
	// reselect must report changed=false when the same route object stays
	// best, so MRAI queues don't fill with no-op updates.
	tb := NewTable(42)
	p := prefix.MustParse("10.0.0.0/23")
	r1 := mk(p.String(), 1, topo.Customer, 1, 9)
	tb.Update(r1)
	_, _, changed := tb.Update(mk(p.String(), 2, topo.Provider, 2, 9))
	if changed {
		t.Fatal("adding worse candidate must not signal change")
	}
	b, _ := tb.Best(p)
	if b != r1 {
		t.Fatal("best route identity changed")
	}
}

func TestDuplicateReannounceNotChanged(t *testing.T) {
	// A content-identical re-announcement from the same neighbor arrives as
	// a fresh *Route; reselect must report changed=false (content equality,
	// not pointer identity) or every duplicate UPDATE re-propagates.
	tb := NewTable(42)
	p := "10.0.0.0/23"
	tb.Update(mk(p, 1, topo.Customer, 1, 5, 9))
	_, best, changed := tb.Update(mk(p, 1, topo.Customer, 1, 5, 9))
	if changed {
		t.Fatalf("duplicate re-announcement reported changed=true (best=%v)", best)
	}
	// An actual content change from the same neighbor must still propagate.
	_, best, changed = tb.Update(mk(p, 1, topo.Customer, 1, 9))
	if !changed || len(best.Path) != 2 {
		t.Fatalf("real replacement suppressed: best=%v changed=%v", best, changed)
	}
}

func TestRouteEqual(t *testing.T) {
	a := mk("10.0.0.0/23", 1, topo.Customer, 1, 9)
	if !a.Equal(mk("10.0.0.0/23", 1, topo.Customer, 1, 9)) {
		t.Fatal("identical content not Equal")
	}
	cases := []*Route{
		mk("10.0.0.0/24", 1, topo.Customer, 1, 9), // prefix differs
		mk("10.0.0.0/23", 2, topo.Customer, 1, 9), // neighbor differs
		mk("10.0.0.0/23", 1, topo.Peer, 1, 9),     // relationship differs
		mk("10.0.0.0/23", 1, topo.Customer, 1, 5, 9),
		nil,
	}
	for i, c := range cases {
		if a.Equal(c) {
			t.Fatalf("case %d: %v should not equal %v", i, a, c)
		}
	}
	var n *Route
	if !n.Equal(nil) || n.Equal(a) {
		t.Fatal("nil Equal semantics wrong")
	}
}

var _ = bgp.ASN(0) // keep import when test bodies change

func TestOriginateWithPath(t *testing.T) {
	tb := NewTable(100)
	p := prefix.MustParse("10.0.0.0/23")
	_, best, changed := tb.OriginateWithPath(p, []bgp.ASN{64500})
	if !changed || best == nil {
		t.Fatal("forged origination did not install")
	}
	if !best.Local() {
		t.Fatal("forged origination must still be a local route")
	}
	if got := best.Origin(100); got != 64500 {
		t.Fatalf("origin = %v, want forged 64500", got)
	}
	// The suffix is cloned: mutating the caller's slice must not reach
	// the installed route.
	suffix := []bgp.ASN{64501, 64502}
	tb.OriginateWithPath(prefix.MustParse("10.2.0.0/23"), suffix)
	suffix[0] = 1
	r, _ := tb.Best(prefix.MustParse("10.2.0.0/23"))
	if r.Path[0] != 64501 {
		t.Fatal("installed path aliases the caller's slice")
	}
	// WithdrawLocal removes it like an honest origination.
	if _, _, changed := tb.WithdrawLocal(p); !changed {
		t.Fatal("withdraw of forged origination did not change best")
	}
}
