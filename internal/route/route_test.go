package route

import (
	"testing"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/topo"
)

func mk(p string, from bgp.ASN, rel topo.Rel, path ...bgp.ASN) *Route {
	return &Route{Prefix: prefix.MustParse(p), Path: path, From: from, Rel: rel}
}

func TestLocalPrefOrdering(t *testing.T) {
	local := mk("10.0.0.0/23", 0, 0)
	cust := mk("10.0.0.0/23", 1, topo.Customer, 1, 9)
	peer := mk("10.0.0.0/23", 2, topo.Peer, 2, 9)
	prov := mk("10.0.0.0/23", 3, topo.Provider, 3, 9)
	if !(local.LocalPref() > cust.LocalPref() && cust.LocalPref() > peer.LocalPref() && peer.LocalPref() > prov.LocalPref()) {
		t.Fatal("local-pref ordering broken")
	}
	if !Better(cust, peer) || !Better(peer, prov) || !Better(local, cust) {
		t.Fatal("Better does not respect local-pref")
	}
}

func TestBetterPrefersShorterPath(t *testing.T) {
	short := mk("10.0.0.0/23", 1, topo.Peer, 1, 9)
	long := mk("10.0.0.0/23", 2, topo.Peer, 2, 5, 9)
	if !Better(short, long) || Better(long, short) {
		t.Fatal("shorter path should win at equal local-pref")
	}
	// But relationship dominates length.
	custLong := mk("10.0.0.0/23", 3, topo.Customer, 3, 4, 5, 9)
	if !Better(custLong, short) {
		t.Fatal("customer route should beat shorter peer route")
	}
}

func TestBetterTiebreakDeterministic(t *testing.T) {
	a := mk("10.0.0.0/23", 1, topo.Peer, 1, 9)
	b := mk("10.0.0.0/23", 2, topo.Peer, 2, 9)
	if !Better(a, b) || Better(b, a) {
		t.Fatal("lowest neighbor ASN should break ties")
	}
}

func TestOriginAndLocal(t *testing.T) {
	r := mk("10.0.0.0/23", 1, topo.Customer, 1, 5, 9)
	if r.Origin(42) != 9 || r.Local() {
		t.Fatalf("Origin/Local broken: %v %v", r.Origin(42), r.Local())
	}
	l := mk("10.0.0.0/23", 0, 0)
	if l.Origin(42) != 42 || !l.Local() {
		t.Fatal("local route origin should be self")
	}
}

func TestHasLoop(t *testing.T) {
	r := mk("10.0.0.0/23", 1, topo.Peer, 1, 5, 9)
	if !r.HasLoop(5) || r.HasLoop(7) {
		t.Fatal("HasLoop broken")
	}
}

func TestExportable(t *testing.T) {
	local := mk("10.0.0.0/23", 0, 0)
	cust := mk("10.0.0.0/23", 1, topo.Customer, 1, 9)
	peer := mk("10.0.0.0/23", 2, topo.Peer, 2, 9)
	prov := mk("10.0.0.0/23", 3, topo.Provider, 3, 9)
	for _, rel := range []topo.Rel{topo.Customer, topo.Peer, topo.Provider} {
		if !Exportable(local, rel) {
			t.Errorf("local route must export to %v", rel)
		}
		if !Exportable(cust, rel) {
			t.Errorf("customer route must export to %v", rel)
		}
	}
	for _, r := range []*Route{peer, prov} {
		if !Exportable(r, topo.Customer) {
			t.Errorf("%v-learned route must export to customers", r.Rel)
		}
		if Exportable(r, topo.Peer) || Exportable(r, topo.Provider) {
			t.Errorf("%v-learned route must not export to peers/providers (valley-free)", r.Rel)
		}
	}
}

func TestRouteString(t *testing.T) {
	var nilRoute *Route
	if nilRoute.String() != "<none>" {
		t.Fatal("nil route String")
	}
	r := mk("10.0.0.0/23", 1, topo.Peer, 1, 9)
	if got := r.String(); got != "10.0.0.0/23 via 1 9" {
		t.Fatalf("String = %q", got)
	}
	l := mk("10.0.0.0/23", 0, 0)
	if got := l.String(); got != "10.0.0.0/23 via local" {
		t.Fatalf("local String = %q", got)
	}
}
