GO ?= go

.PHONY: build test race bench soak fuzz fmt vet examples ci rib-fixture rib-measure fleet fleet-smoke fleet-corpus

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Single-pass bench run, the same invocation CI archives (bench.txt is the
# BENCH_* data source).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | tee bench.txt

# Fetch-or-generate the full-scale RIB fixture: a deterministic
# TABLE_DUMP_V2 snapshot sized like today's global table (~1M v4 + ~220k
# v6 prefixes, ~390MB). ribgen keeps an existing non-empty file, so a
# downloaded real collector dump at the same path is never clobbered;
# RIB_FIXTURE overrides the location.
RIB_FIXTURE ?= testdata/rib-full.mrt
rib-fixture:
	@mkdir -p $(dir $(RIB_FIXTURE))
	$(GO) run ./cmd/ribgen -o $(RIB_FIXTURE)

# Measure full-RIB bootstrap (load time + resident table memory) against
# the fixture above; numbers feed docs/PERFORMANCE.md#full-rib-load.
rib-measure: rib-fixture
	ARTEMIS_RIB_FULL=1 ARTEMIS_RIB_FIXTURE=$(abspath $(RIB_FIXTURE)) \
		$(GO) test -run TestFullRIBLoadMeasured -count=1 -v ./internal/rib

# The adversarial scenario fleet (docs/SCENARIOS.md): N seeded hijack
# scenarios per taxonomy class over v4/v6/mixed owned sets, scored for
# detection latency and FP/FN accuracy. Writes fleet-scorecard.json and
# enforces the fleet.gates accuracy bounds (zero FN on origin-level
# classes, zero FP on the controls). Nightly CI archives the scorecard.
FLEET_SEEDS ?= 3
fleet:
	$(GO) run ./cmd/fleet -seeds $(FLEET_SEEDS) -out fleet-scorecard.json -check fleet.gates

# PR-CI subset: full taxonomy, v4 only, one seed — a few seconds.
fleet-smoke:
	$(GO) run ./cmd/fleet -smoke -out '' -check fleet.gates

# Regenerate the checked-in detector-level replay corpus
# (internal/fleet/testdata) after an intentional behavior change.
fleet-corpus:
	$(GO) run ./cmd/fleet -testdata internal/fleet/testdata

# Soak the ingest supervisor against flapping in-process RIS/BGPmon
# servers under the race detector (the short-mode version of this test
# runs in every `make test`).
soak:
	ARTEMIS_SOAK=10s $(GO) test -race -run TestSoakFlappingFeeds -count=1 -v ./internal/ingest

# Fuzz the wire-facing parsers: the dual-stack parse/format core, the
# BMP message layer, and the event-envelope codec. Each target runs for
# FUZZTIME (default 30s); new inputs that fail land in the package's
# testdata/fuzz/ directory.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseAddr -fuzztime=$(FUZZTIME) ./internal/prefix
	$(GO) test -run='^$$' -fuzz=FuzzParsePrefix -fuzztime=$(FUZZTIME) ./internal/prefix
	$(GO) test -run='^$$' -fuzz=FuzzPrefixString -fuzztime=$(FUZZTIME) ./internal/prefix
	$(GO) test -run='^$$' -fuzz=FuzzBMPMessage -fuzztime=$(FUZZTIME) ./internal/bgp/bmp
	$(GO) test -run='^$$' -fuzz=FuzzEventJSON -fuzztime=$(FUZZTIME) ./internal/feeds/eventlog

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Build every example/command and run the public-API Example tests —
# the same gate CI's examples job applies to the pkg/ surface.
examples:
	$(GO) build ./examples/... ./cmd/...
	$(GO) test -run Example -v ./pkg/...

ci: fmt build vet race examples
