GO ?= go

.PHONY: build test race bench fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Single-pass bench run, the same invocation CI archives (bench.txt is the
# BENCH_* data source).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | tee bench.txt

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt build vet race
