GO ?= go

.PHONY: build test race bench soak fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Single-pass bench run, the same invocation CI archives (bench.txt is the
# BENCH_* data source).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | tee bench.txt

# Soak the ingest supervisor against flapping in-process RIS/BGPmon
# servers under the race detector (the short-mode version of this test
# runs in every `make test`).
soak:
	ARTEMIS_SOAK=10s $(GO) test -race -run TestSoakFlappingFeeds -count=1 -v ./internal/ingest

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt build vet race
