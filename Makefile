GO ?= go

.PHONY: build test race bench soak fuzz fmt vet examples ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Single-pass bench run, the same invocation CI archives (bench.txt is the
# BENCH_* data source).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | tee bench.txt

# Soak the ingest supervisor against flapping in-process RIS/BGPmon
# servers under the race detector (the short-mode version of this test
# runs in every `make test`).
soak:
	ARTEMIS_SOAK=10s $(GO) test -race -run TestSoakFlappingFeeds -count=1 -v ./internal/ingest

# Fuzz the wire-facing parsers: the dual-stack parse/format core, the
# BMP message layer, and the event-envelope codec. Each target runs for
# FUZZTIME (default 30s); new inputs that fail land in the package's
# testdata/fuzz/ directory.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseAddr -fuzztime=$(FUZZTIME) ./internal/prefix
	$(GO) test -run='^$$' -fuzz=FuzzParsePrefix -fuzztime=$(FUZZTIME) ./internal/prefix
	$(GO) test -run='^$$' -fuzz=FuzzPrefixString -fuzztime=$(FUZZTIME) ./internal/prefix
	$(GO) test -run='^$$' -fuzz=FuzzBMPMessage -fuzztime=$(FUZZTIME) ./internal/bgp/bmp
	$(GO) test -run='^$$' -fuzz=FuzzEventJSON -fuzztime=$(FUZZTIME) ./internal/feeds/eventlog

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Build every example/command and run the public-API Example tests —
# the same gate CI's examples job applies to the pkg/ surface.
examples:
	$(GO) build ./examples/... ./cmd/...
	$(GO) test -run Example -v ./pkg/...

ci: fmt build vet race examples
