// Benchmarks regenerating every quantitative result of the paper
// (experiments E1–E6, see DESIGN.md) plus ablations of the design choices.
// Each experiment bench runs full simulated trials per iteration and
// reports the measured simulated latencies as custom metrics, so
// `go test -bench=. -benchmem` reproduces the paper's numbers alongside
// the harness's own computational cost.
package artemis_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/core"
	"artemis/internal/experiment"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
	"artemis/internal/simnet"
	"artemis/internal/topo"
)

func benchOpts(seed int64) experiment.Options {
	cfg := topo.DefaultGenConfig()
	cfg.Stubs = 150
	cfg.Transit = 40
	cfg.Seed = seed
	return experiment.Options{Seed: seed, Topo: cfg}
}

// BenchmarkE1_EndToEnd reproduces §3's headline timeline: detection ≈45s,
// trigger ≈15s, mitigation ≤5min, total ≈6min.
func BenchmarkE1_EndToEnd(b *testing.B) {
	var det, trig, mit, tot time.Duration
	n := 0
	for i := 0; i < b.N; i++ {
		env, err := experiment.Build(benchOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		tr, err := experiment.RunTrial(env)
		env.Close()
		if err != nil {
			b.Fatal(err)
		}
		if !tr.Detected {
			continue
		}
		det += tr.DetectionDelay
		trig += tr.TriggerDelay
		mit += tr.MitigationDelay
		tot += tr.Total
		n++
	}
	if n > 0 {
		b.ReportMetric(det.Seconds()/float64(n), "detect-s")
		b.ReportMetric(trig.Seconds()/float64(n), "trigger-s")
		b.ReportMetric(mit.Seconds()/float64(n), "mitigate-s")
		b.ReportMetric(tot.Seconds()/float64(n), "total-s")
	}
}

// BenchmarkE2_PerSourceDetection reproduces §2's min-of-sources claim.
func BenchmarkE2_PerSourceDetection(b *testing.B) {
	for _, src := range []string{experiment.SrcRIS, experiment.SrcBGPmon, experiment.SrcPeriscope, "combined"} {
		src := src
		b.Run(src, func(b *testing.B) {
			var sum time.Duration
			n := 0
			for i := 0; i < b.N; i++ {
				opts := benchOpts(int64(i + 100))
				if src != "combined" {
					opts.Sources = []string{src}
				}
				env, err := experiment.Build(opts)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := experiment.RunTrial(env)
				env.Close()
				if err != nil {
					b.Fatal(err)
				}
				if tr.Detected {
					sum += tr.DetectionDelay
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(sum.Seconds()/float64(n), "detect-s")
			}
			b.ReportMetric(float64(n)/float64(b.N), "coverage")
		})
	}
}

// BenchmarkE3_MonitoringTradeoff reproduces the §2 parametrization
// trade-off: arsenal size vs overhead vs detection speed.
func BenchmarkE3_MonitoringTradeoff(b *testing.B) {
	for _, lgs := range []int{2, 8, 32} {
		lgs := lgs
		b.Run(map[int]string{2: "lgs-2", 8: "lgs-8", 32: "lgs-32"}[lgs], func(b *testing.B) {
			var det time.Duration
			queries, n := 0, 0
			for i := 0; i < b.N; i++ {
				opts := benchOpts(int64(i + 200))
				opts.Sources = []string{experiment.SrcPeriscope}
				opts.LGCount = lgs
				env, err := experiment.Build(opts)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := experiment.RunTrial(env)
				env.Close()
				if err != nil {
					b.Fatal(err)
				}
				queries += tr.LGQueries
				if tr.Detected {
					det += tr.DetectionDelay
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(det.Seconds()/float64(n), "detect-s")
			}
			b.ReportMetric(float64(n)/float64(b.N), "coverage")
			b.ReportMetric(float64(queries)/float64(b.N), "queries/trial")
		})
	}
}

// BenchmarkE4_DeaggregationLimit reproduces the §2 caveat: /22 and /23
// victims recover fully; a /24 victim cannot be out-specified.
func BenchmarkE4_DeaggregationLimit(b *testing.B) {
	for _, bits := range []int{22, 23, 24} {
		bits := bits
		b.Run(map[int]string{22: "victim-22", 23: "victim-23", 24: "victim-24"}[bits], func(b *testing.B) {
			var recovered float64
			for i := 0; i < b.N; i++ {
				opts := benchOpts(int64(i + 300))
				opts.Owned = prefix.New(prefix.MustParseAddr("10.0.0.0"), bits)
				env, err := experiment.Build(opts)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := experiment.RunTrial(env)
				env.Close()
				if err != nil {
					b.Fatal(err)
				}
				recovered += tr.RecoveredFrac
			}
			b.ReportMetric(recovered/float64(b.N), "recovered-frac")
		})
	}
}

// BenchmarkE5_BaselineComparison reproduces §1's argument: the archive
// pipeline is minutes-to-hours slower, missing most short hijacks.
func BenchmarkE5_BaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.E5(2, benchOpts(int64(i+400)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ArtemisResponse.Mean.Seconds(), "artemis-s")
		b.ReportMetric(res.BaselineResponse.Mean.Seconds(), "baseline-s")
		b.ReportMetric(res.ArtemisCoverage, "artemis-coverage")
		b.ReportMetric(res.BaselineCoverage, "baseline-coverage")
	}
}

// BenchmarkE6_PropagationTimeline regenerates the §4 demo series.
func BenchmarkE6_PropagationTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.E6(benchOpts(int64(i + 500)))
		if err != nil {
			b.Fatal(err)
		}
		res.Env.Close()
		b.ReportMetric(float64(len(res.Points)), "samples")
		b.ReportMetric(res.Trial.Total.Seconds(), "total-s")
	}
}

// --- Ablations of design choices (DESIGN.md) ---

// BenchmarkAblation_MRAI: the MRAI dominates the mitigation tail.
func BenchmarkAblation_MRAI(b *testing.B) {
	for name, mrai := range map[string]time.Duration{
		"mrai-0s": simnet.Disabled, "mrai-15s": 15 * time.Second, "mrai-30s": 30 * time.Second,
	} {
		mrai := mrai
		b.Run(name, func(b *testing.B) {
			var tot time.Duration
			n := 0
			for i := 0; i < b.N; i++ {
				opts := benchOpts(int64(i + 600))
				opts.Net = simnet.Config{MRAI: mrai}
				env, err := experiment.Build(opts)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := experiment.RunTrial(env)
				env.Close()
				if err != nil {
					b.Fatal(err)
				}
				if tr.Detected {
					tot += tr.Total
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(tot.Seconds()/float64(n), "total-s")
			}
		})
	}
}

// BenchmarkAblation_DetectionCriteria: single-source vs all-sources
// detection (the min-of-delays design).
func BenchmarkAblation_DetectionCriteria(b *testing.B) {
	for _, mode := range []string{"streams-only", "all-sources"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var det time.Duration
			n := 0
			for i := 0; i < b.N; i++ {
				opts := benchOpts(int64(i + 700))
				if mode == "streams-only" {
					opts.Sources = []string{experiment.SrcRIS, experiment.SrcBGPmon}
				}
				env, err := experiment.Build(opts)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := experiment.RunTrial(env)
				env.Close()
				if err != nil {
					b.Fatal(err)
				}
				if tr.Detected {
					det += tr.DetectionDelay
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(det.Seconds()/float64(n), "detect-s")
			}
		})
	}
}

// BenchmarkAblation_PrefixIndex: radix trie vs linear scan for
// longest-prefix match, the detector/monitor hot path.
func BenchmarkAblation_PrefixIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const nPrefixes = 2000
	prefixes := make([]prefix.Prefix, nPrefixes)
	tr := prefix.NewTrie[int]()
	for i := range prefixes {
		p := prefix.New(prefix.AddrFrom4(rng.Uint32()), 8+rng.Intn(17))
		prefixes[i] = p
		tr.Insert(p, i)
	}
	addrs := make([]prefix.Addr, 1024)
	for i := range addrs {
		addrs[i] = prefix.AddrFrom4(rng.Uint32())
	}
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.LongestMatch(addrs[i%len(addrs)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := addrs[i%len(addrs)]
			best, ok := prefix.Prefix{}, false
			for _, p := range prefixes {
				if p.ContainsAddr(a) && (!ok || p.Bits() > best.Bits()) {
					best, ok = p, true
				}
			}
			_ = best
		}
	})
}

// --- Detection data path: serial vs sharded pipeline ---

// pipelineBenchConfig protects a realistically wide owned space — a /16
// announced as 1024 /26s, the shape of a large operator protecting every
// customer allocation — so the owned-space match has real work to do. The
// serial path scans this list per event; the pipeline resolves it with one
// trie LPM walk during shard routing and reuses the answer.
func pipelineBenchConfig(tb testing.TB) *core.Config {
	owned, err := prefix.MustParse("10.0.0.0/16").Deaggregate(26)
	if err != nil {
		tb.Fatal(err)
	}
	return &core.Config{OwnedPrefixes: owned, LegitOrigins: []bgp.ASN{61000}}
}

// pipelineWorkload builds a deterministic feed-scale event mix: mostly
// benign announcements of the owned space, a slice of unrelated routes the
// filter would pass anyway (covering prefixes), and a pinch of repeated
// hijacks (dedup keeps alert volume bounded across iterations).
func pipelineWorkload(n int) []feedtypes.Event {
	rng := rand.New(rand.NewSource(42))
	evs := make([]feedtypes.Event, n)
	for i := range evs {
		vp := bgp.ASN(100 + rng.Intn(64))
		ev := feedtypes.Event{
			Source:       []string{"ris", "bgpmon", "periscope"}[rng.Intn(3)],
			Collector:    "c0",
			VantagePoint: vp,
			Kind:         feedtypes.Announce,
			SeenAt:       time.Duration(i) * time.Millisecond,
			EmittedAt:    time.Duration(i) * time.Millisecond,
		}
		switch r := rng.Intn(100); {
		case r < 80: // benign: a random owned /26 (or a /27 half), legit origin
			base := uint32(10<<24) + uint32(rng.Intn(1024)<<6)
			if rng.Intn(2) == 0 {
				ev.Prefix = prefix.New(prefix.AddrFrom4(base), 26)
			} else {
				ev.Prefix = prefix.New(prefix.AddrFrom4(base+uint32(rng.Intn(2)<<5)), 27)
			}
			ev.Path = []bgp.ASN{vp, 1001, 61000}
		case r < 95: // unrelated announcement
			ev.Prefix = prefix.New(prefix.AddrFrom4(172<<24|uint32(rng.Intn(1<<16))<<8), 24)
			ev.Path = []bgp.ASN{vp, 2001, bgp.ASN(3000 + rng.Intn(32))}
		default: // hijack, drawn from a small set of repeating incidents
			base := uint32(10<<24) + uint32(rng.Intn(16)<<6)
			ev.Prefix = prefix.New(prefix.AddrFrom4(base), 26)
			ev.Path = []bgp.ASN{vp, 2001, bgp.ASN(666 + rng.Intn(4))}
		}
		evs[i] = ev
	}
	return evs
}

// BenchmarkDetectionBatchIngest is the pipeline's headline number: events
// per second through classification for the serial reference path vs the
// sharded pipeline at 1/4/8 shards. The 1-shard case isolates the
// pipeline's fixed overhead (routing, scatter, sink); the 8-shard case
// must beat serial.
func BenchmarkDetectionBatchIngest(b *testing.B) {
	const (
		workload  = 8192
		batchSize = 256 // a hot feed's coalesced flush (cmd/artemisd's pump cap)
	)
	evs := pipelineWorkload(workload)

	b.Run("serial", func(b *testing.B) {
		det := core.NewDetector(pipelineBenchConfig(b))
		b.ReportAllocs() // the allocation-free-hot-path contract (docs/PERFORMANCE.md)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(evs); off += batchSize {
				det.ProcessBatch(evs[off : off+batchSize])
			}
		}
		b.ReportMetric(float64(workload)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			det := core.NewDetector(pipelineBenchConfig(b))
			pl := core.NewPipeline(det, nil, core.PipelineConfig{Shards: shards})
			defer pl.Close()
			b.ReportAllocs() // the allocation-free-hot-path contract (docs/PERFORMANCE.md)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for off := 0; off < len(evs); off += batchSize {
					pl.Submit(evs[off : off+batchSize])
				}
				pl.Flush()
			}
			b.ReportMetric(float64(workload)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkTenantFanOut measures the hosted multi-tenant shape: 1000
// tenants, 10 owned /26s each, one shared pipeline. fanout-1 gives every
// tenant a disjoint block (each event classifies under exactly one
// policy) and isolates the routing cost of a 10k-prefix, 1000-way table;
// fanout-4 makes groups of four tenants co-own each block, so every
// matched event classifies four times — the events/s vs classified/s gap
// is the fan-out multiplier. Both sub-benchmarks carry the allocs/op
// gate: tenant fan-out must not reintroduce per-event allocation.
func BenchmarkTenantFanOut(b *testing.B) {
	const (
		tenants   = 1000
		perTenant = 10
		workload  = 8192
		batchSize = 256
	)
	space, err := prefix.MustParse("10.0.0.0/12").Deaggregate(26)
	if err != nil {
		b.Fatal(err)
	}
	for _, fanout := range []int{1, 4} {
		b.Run(fmt.Sprintf("fanout-%d", fanout), func(b *testing.B) {
			policies := make([]core.TenantPolicy, tenants)
			for i := range policies {
				block := i / fanout
				cfg := &core.Config{
					OwnedPrefixes: space[block*perTenant : (block+1)*perTenant],
					LegitOrigins:  []bgp.ASN{61000},
				}
				policies[i] = core.TenantPolicy{
					Name: fmt.Sprintf("t%04d", i), Config: cfg, Detector: core.NewDetector(cfg),
				}
			}
			table, err := core.NewPolicyTable(policies)
			if err != nil {
				b.Fatal(err)
			}
			pl := core.NewPipelineTable(table, core.PipelineConfig{Shards: 4})
			defer pl.Close()

			owned := space[:tenants/fanout*perTenant]
			evs := tenantFanOutWorkload(workload, owned)
			for off := 0; off+batchSize <= len(evs); off += batchSize {
				pl.Submit(evs[off : off+batchSize])
			}
			pl.Flush()

			b.ReportAllocs() // the allocation-free-hot-path contract (docs/PERFORMANCE.md)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for off := 0; off < len(evs); off += batchSize {
					pl.Submit(evs[off : off+batchSize])
				}
				pl.Flush()
			}
			elapsed := b.Elapsed().Seconds()
			b.ReportMetric(float64(workload)*float64(b.N)/elapsed, "events/s")
			b.ReportMetric(float64(workload*fanout)*float64(b.N)/elapsed, "classified/s")
		})
	}
}

// tenantFanOutWorkload is pipelineWorkload's multi-tenant twin: benign
// announcements spread uniformly over the given owned space, with the
// same pinch of repeating hijack incidents (dedup bounds alert volume).
func tenantFanOutWorkload(n int, owned []prefix.Prefix) []feedtypes.Event {
	rng := rand.New(rand.NewSource(43))
	evs := make([]feedtypes.Event, n)
	for i := range evs {
		vp := bgp.ASN(100 + rng.Intn(64))
		ev := feedtypes.Event{
			Source:       []string{"ris", "bgpmon", "periscope"}[rng.Intn(3)],
			Collector:    "c0",
			VantagePoint: vp,
			Kind:         feedtypes.Announce,
			SeenAt:       time.Duration(i) * time.Millisecond,
			EmittedAt:    time.Duration(i) * time.Millisecond,
		}
		switch r := rng.Intn(100); {
		case r < 95: // benign announcement of a random tenant's prefix
			ev.Prefix = owned[rng.Intn(len(owned))]
			ev.Path = []bgp.ASN{vp, 1001, 61000}
		default: // hijack, drawn from a small set of repeating incidents
			ev.Prefix = owned[rng.Intn(16)]
			ev.Path = []bgp.ASN{vp, 2001, bgp.ASN(666 + rng.Intn(4))}
		}
		evs[i] = ev
	}
	return evs
}

// BenchmarkIngestFanIn measures the supervised multi-source fan-in: the
// same feed-scale workload delivered over 1, 4 or 8 supervised source
// connections with overlapping vantage points — each route change has a
// primary source (sticky per vantage point, like real collector peering)
// and is re-observed by a second source for a quarter of the events, so
// the cross-source dedup has real work. Unique-event throughput must stay
// close to the single-connection number even as the connection count and
// the duplicate volume grow — the property that makes adding monitoring
// sources reduce detection delay instead of multiplying sink load.
func BenchmarkIngestFanIn(b *testing.B) {
	const (
		workload  = 8192
		batchSize = 256
	)
	base := pipelineWorkload(workload)
	for _, nsrc := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("sources-%d", nsrc), func(b *testing.B) {
			// Scatter the workload across the sources: primary by vantage
			// point, plus a ~25% cross-source duplicate tail when more
			// than one source exists.
			rng := rand.New(rand.NewSource(7))
			perSource := make([][]feedtypes.Event, nsrc)
			ingested := 0
			for i := range base {
				ev := base[i]
				s := int(ev.VantagePoint) % nsrc
				ev.Source = fmt.Sprintf("src%d", s)
				perSource[s] = append(perSource[s], ev)
				ingested++
				if nsrc > 1 && rng.Intn(4) == 0 {
					dup := base[i]
					d := (s + 1 + rng.Intn(nsrc-1)) % nsrc
					dup.Source = fmt.Sprintf("src%d", d)
					dup.EmittedAt += time.Millisecond // the slower feed's copy
					perSource[d] = append(perSource[d], dup)
					ingested++
				}
			}
			streams := make([][][]feedtypes.Event, nsrc)
			for s := range perSource {
				for off := 0; off < len(perSource[s]); off += batchSize {
					streams[s] = append(streams[s], perSource[s][off:min(off+batchSize, len(perSource[s]))])
				}
			}
			// allocs/op here includes building a detector, pipeline and
			// supervisor per iteration; the steady-state per-event path is
			// gated by BenchmarkDetectionBatchIngest instead.
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det := core.NewDetector(pipelineBenchConfig(b))
				pl := core.NewPipeline(det, nil, core.PipelineConfig{})
				sup := ingest.New(pl.Submit, ingest.Config{QueueDepth: 256})
				for s := range streams {
					sup.AddDialer(fmt.Sprintf("src%d", s), ingest.ReplayDialer(streams[s]), ingest.Blocking())
				}
				sup.Wait() // replay sources end themselves (ErrDone)
				sup.Close()
				pl.Flush()
				pl.Close()
			}
			elapsed := b.Elapsed().Seconds()
			b.ReportMetric(float64(workload)*float64(b.N)/elapsed, "events/s")
			b.ReportMetric(float64(ingested)*float64(b.N)/elapsed, "ingested/s")
		})
	}
}

// BenchmarkSinkApply isolates the sink's per-event monitor cost at 64
// vantage points: the pre-incremental design re-scored every VP against
// every probe on each event (reproduced here as Process + Rescore, the
// exported from-scratch fold), while the incremental monitor touches only
// the probes the event's prefix covers. The incremental path must win by
// ≥5x — it is what keeps the single ordered sink off the ingest critical
// path.
func BenchmarkSinkApply(b *testing.B) {
	const nVPs = 64
	mkConfig := func() *core.Config {
		// A /20 probed as 16 /24s: wide enough that a full fold has real
		// work per VP.
		return &core.Config{
			OwnedPrefixes: []prefix.Prefix{prefix.MustParse("10.0.0.0/20")},
			LegitOrigins:  []bgp.ASN{61000},
		}
	}
	mkEvents := func(n int) []feedtypes.Event {
		rng := rand.New(rand.NewSource(9))
		evs := make([]feedtypes.Event, n)
		for i := range evs {
			origin := bgp.ASN(61000)
			if rng.Intn(10) == 0 {
				origin = bgp.ASN(660 + rng.Intn(4))
			}
			base := prefix.AddrFrom4(uint32(10<<24) + uint32(rng.Intn(16)<<8))
			evs[i] = feedtypes.Event{
				Source: "ris", VantagePoint: bgp.ASN(100 + rng.Intn(nVPs)),
				Kind: feedtypes.Announce, Prefix: prefix.New(base, 24),
				Path:   []bgp.ASN{bgp.ASN(100 + rng.Intn(nVPs)), 2000, origin},
				SeenAt: time.Duration(i) * time.Millisecond, EmittedAt: time.Duration(i) * time.Millisecond,
			}
		}
		return evs
	}
	warm := mkEvents(4 * nVPs) // populate all VPs before measuring
	evs := mkEvents(8192)

	b.Run("full-fold", func(b *testing.B) {
		m := core.NewMonitor(mkConfig())
		m.ProcessBatch(warm)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := evs[i%len(evs)]
			m.Process(ev)
			m.Rescore(ev.EmittedAt) // the pre-incremental per-event cost
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/event")
	})
	b.Run("incremental", func(b *testing.B) {
		m := core.NewMonitor(mkConfig())
		m.ProcessBatch(warm)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Process(evs[i%len(evs)])
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/event")
	})
}

// BenchmarkBGPCodec measures the wire codec on a realistic UPDATE.
func BenchmarkBGPCodec(b *testing.B) {
	u := &bgp.Update{
		Attrs: []bgp.PathAttr{
			&bgp.OriginAttr{Value: bgp.OriginIGP},
			bgp.NewASPath([]bgp.ASN{65001, 65002, 65003, 196615}),
			&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
		},
		NLRI: []prefix.Prefix{prefix.MustParse("10.0.0.0/23"), prefix.MustParse("10.0.0.0/24")},
	}
	wire, err := bgp.Marshal(u, bgp.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bgp.Marshal(u, bgp.DefaultOptions); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bgp.ParseMessage(wire, bgp.DefaultOptions); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatorConvergence measures raw simulator throughput: one
// announcement flooding a 500-AS Internet.
func BenchmarkSimulatorConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, err := experiment.Build(benchOpts(int64(i + 800)))
		if err != nil {
			b.Fatal(err)
		}
		if err := env.Victim.Announce(env.Net, env.Opts.Owned); err != nil {
			b.Fatal(err)
		}
		env.Engine.RunUntil(10 * time.Minute)
		env.Close()
	}
}
