package artemis_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"artemis/pkg/artemis"
)

// tenantTestConfig is a hosted node: the operator's own prefixes plus
// two customer tenants, one of them overlapping the operator's space.
func tenantTestConfig() *artemis.Config {
	return &artemis.Config{
		Prefixes:   []string{"10.0.0.0/23"},
		Origins:    []uint32{61000},
		Mitigation: artemis.MitigationConfig{ConfigDelay: artemis.Duration(time.Millisecond)},
		Tenants: []artemis.TenantSpec{
			{Name: "acme", Prefixes: []string{"192.0.2.0/24"}, Origins: []uint32{64500}},
			{Name: "globex", Prefixes: []string{"198.51.100.0/24"}, Origins: []uint32{64501}},
		},
	}
}

// TestNodeMultiTenant drives a hosted node end to end: events fan out to
// the owning tenant only, alerts and subscriptions are tenant-scoped,
// and per-tenant CRUD retunes one tenant without touching the others.
func TestNodeMultiTenant(t *testing.T) {
	node, err := artemis.New(tenantTestConfig(), quiet())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- node.Run(ctx) }()
	defer func() {
		cancel()
		<-runErr
	}()

	if got := node.TenantNames(); len(got) != 3 || got[0] != artemis.DefaultTenant || got[1] != "acme" || got[2] != "globex" {
		t.Fatalf("tenant names: %v", got)
	}

	acmeSub, err := node.SubscribeTenant("acme", artemis.KindAlert, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer acmeSub.Cancel()
	if _, err := node.SubscribeTenant("nosuch", artemis.KindAll, 4); err == nil {
		t.Fatal("SubscribeTenant accepted an unknown tenant")
	}

	// Hijack acme's prefix: only acme alerts.
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 64499, Prefix: "192.0.2.0/24", Path: []uint32{64499, 666},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-acmeSub.C:
		if ev.Tenant != "acme" || ev.Alert == nil || ev.Alert.Tenant != "acme" || ev.Alert.Type != "exact-origin" {
			t.Fatalf("acme alert event: %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no alert for acme's hijacked prefix")
	}

	// Hijack the operator's prefix: the default tenant alerts; acme's
	// scoped subscription must not see it.
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 64499, Prefix: "10.0.0.0/24", Path: []uint32{64499, 666},
	}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "default-tenant alert", func() bool {
		alerts, err := node.TenantAlerts(artemis.DefaultTenant)
		return err == nil && len(alerts) == 1
	})
	select {
	case ev := <-acmeSub.C:
		t.Fatalf("acme subscription leaked another tenant's event: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}

	// Tenant-scoped introspection.
	if alerts, err := node.TenantAlerts("acme"); err != nil || len(alerts) != 1 || alerts[0].Tenant != "acme" {
		t.Fatalf("acme alerts: %v %v", alerts, err)
	}
	if alerts, err := node.TenantAlerts("globex"); err != nil || len(alerts) != 0 {
		t.Fatalf("globex alerts: %v %v", alerts, err)
	}
	if all := node.Alerts(); len(all) != 2 {
		t.Fatalf("merged alerts: %+v", all)
	}
	sts := node.Tenants()
	if len(sts) != 3 || sts[1].Name != "acme" || sts[1].Alerts != 1 || sts[2].Alerts != 0 {
		t.Fatalf("tenant statuses: %+v", sts)
	}
	if sts[1].Events == 0 {
		t.Fatalf("acme status counted no matched events: %+v", sts[1])
	}

	// Retune one tenant live: globex gains a prefix, acme keeps alerting.
	if err := node.AddTenantPrefixes("globex", "203.0.113.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 64499, Prefix: "203.0.113.0/24", Path: []uint32{64499, 666},
	}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "globex alert on hot-added prefix", func() bool {
		alerts, err := node.TenantAlerts("globex")
		return err == nil && len(alerts) == 1
	})
	if err := node.SetTenantOrigins("acme", 64500, 64510); err != nil {
		t.Fatal(err)
	}
	if err := node.SetTenantOrigins("acme"); err == nil {
		t.Fatal("SetTenantOrigins accepted an empty set")
	}

	// Upstream (path-anomaly) policy round trip.
	if err := node.SetUpstreams("acme", map[uint32][]uint32{64500: {3356}}); err != nil {
		t.Fatal(err)
	}
	ups, err := node.Upstreams("acme")
	if err != nil || len(ups[64500]) != 1 || ups[64500][0] != 3356 {
		t.Fatalf("upstreams round trip: %v %v", ups, err)
	}
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 64499, Prefix: "192.0.2.0/24", Path: []uint32{64499, 174, 64500},
	}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "acme path-anomaly alert", func() bool {
		alerts, _ := node.TenantAlerts("acme")
		for _, a := range alerts {
			if a.Type == "path-anomaly" {
				return true
			}
		}
		return false
	})

	// Metrics carry the per-tenant families and the merged legacy ones.
	var sb strings.Builder
	node.WriteMetrics(&sb)
	body := sb.String()
	for _, want := range []string{
		`artemis_tenant_events_total{tenant="acme"}`,
		`artemis_tenant_alerts_total{tenant="globex"} 1`,
		"artemis_alerts_total ",
		"artemis_auth_failures_total 0",
		"artemis_mitigation_enqueued_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestNodeTenantCRUDAndPersistence hot-adds and hot-removes tenants and
// verifies every mutation lands in the state file, from which a new node
// resumes with the same tenant set.
func TestNodeTenantCRUDAndPersistence(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state.json")
	cfg := tenantTestConfig()
	cfg.Control.StateFile = state
	node, err := artemis.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- node.Run(ctx) }()

	if err := node.AddTenant(artemis.TenantSpec{
		Name: "initech", Prefixes: []string{"203.0.113.0/24"}, Origins: []uint32{64502},
		Limits: artemis.TenantLimits{MaxEventsPerSec: 100},
	}); err != nil {
		t.Fatal(err)
	}
	if err := node.AddTenant(artemis.TenantSpec{Name: "initech", Prefixes: []string{"203.0.113.0/25"}, Origins: []uint32{1}}); err == nil {
		t.Fatal("duplicate AddTenant accepted")
	}
	if err := node.RemoveTenant("globex"); err != nil {
		t.Fatal(err)
	}
	if err := node.RemoveTenant(artemis.DefaultTenant); err == nil {
		t.Fatal("RemoveTenant accepted the default tenant")
	}
	if err := node.RemoveTenant("nosuch"); err == nil {
		t.Fatal("RemoveTenant accepted an unknown tenant")
	}

	// The new tenant classifies immediately.
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 64499, Prefix: "203.0.113.0/24", Path: []uint32{64499, 666},
	}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "initech alert", func() bool {
		alerts, err := node.TenantAlerts("initech")
		return err == nil && len(alerts) == 1
	})
	if _, err := node.TenantAlerts("globex"); err == nil {
		t.Fatal("removed tenant still resolves")
	}

	cancel()
	<-runErr

	// Restart from the persisted store: membership and limits survive.
	persisted, err := artemis.LoadState(state)
	if err != nil {
		t.Fatal(err)
	}
	node2, err := artemis.New(persisted, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Drain()
	names := node2.TenantNames()
	if len(names) != 3 || names[0] != artemis.DefaultTenant || names[1] != "acme" || names[2] != "initech" {
		t.Fatalf("tenants after restart: %v", names)
	}
	st, err := node2.TenantStatus("initech")
	if err != nil || st.Limits.MaxEventsPerSec != 100 {
		t.Fatalf("initech limits after restart: %+v %v", st, err)
	}
}

// TestNodeReplaceConfig swaps the whole declarative config atomically:
// tenant membership diffs, retained tenants retune, and hot-tunables
// (dedup bounds, retry limits) apply live.
func TestNodeReplaceConfig(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state.json")
	cfg := tenantTestConfig()
	cfg.Control.StateFile = state
	node, err := artemis.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Drain()

	next := tenantTestConfig()
	next.Tenants = []artemis.TenantSpec{
		{Name: "acme", Prefixes: []string{"192.0.2.0/24", "203.0.113.0/24"}, Origins: []uint32{64500}}, // retained, retuned
		{Name: "hooli", Prefixes: []string{"198.18.0.0/15"}, Origins: []uint32{64503}},                 // added
		// globex removed
	}
	next.Tuning.AlertDedupMax = 128
	if err := node.ReplaceConfig(next); err != nil {
		t.Fatal(err)
	}
	names := node.TenantNames()
	if len(names) != 3 || names[1] != "acme" || names[2] != "hooli" {
		t.Fatalf("tenants after replace: %v", names)
	}
	st, err := node.TenantStatus("acme")
	if err != nil || len(st.Prefixes) != 2 {
		t.Fatalf("acme scope after replace: %+v %v", st, err)
	}
	got := node.Config()
	if got.Tuning.AlertDedupMax != 128 {
		t.Fatalf("tuning not replaced: %+v", got.Tuning)
	}
	// Invalid replacements are rejected whole.
	bad := tenantTestConfig()
	bad.Tenants[0].Origins = nil
	if err := node.ReplaceConfig(bad); err == nil {
		t.Fatal("ReplaceConfig accepted an invalid config")
	}
	// State file reflects the applied config.
	data, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"hooli"`) || strings.Contains(string(data), `"globex"`) {
		t.Fatalf("state file not updated:\n%s", data)
	}
}

// TestNodeAuth covers the token model: open mode without tokens, admin
// and tenant scopes with them, and observable failures.
func TestNodeAuth(t *testing.T) {
	cfg := tenantTestConfig()
	node, err := artemis.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Drain()
	if node.Secured() {
		t.Fatal("node with no tokens reports secured")
	}
	if sc, ok := node.Authenticate(""); !ok || !sc.Admin {
		t.Fatalf("open mode should grant admin: %+v %v", sc, ok)
	}

	cfg2 := tenantTestConfig()
	cfg2.Control.AdminToken = "root-secret"
	cfg2.Tenants[0].Token = "acme-secret"
	node2, err := artemis.New(cfg2, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Drain()
	if !node2.Secured() {
		t.Fatal("node with tokens reports unsecured")
	}
	if sc, ok := node2.Authenticate("root-secret"); !ok || !sc.Admin {
		t.Fatalf("admin token: %+v %v", sc, ok)
	}
	sc, ok := node2.Authenticate("acme-secret")
	if !ok || sc.Admin || sc.Tenant != "acme" {
		t.Fatalf("tenant token: %+v %v", sc, ok)
	}
	if !sc.Allows("acme") || sc.Allows("globex") {
		t.Fatal("tenant scope crosses tenant boundary")
	}
	if _, ok := node2.Authenticate("wrong"); ok {
		t.Fatal("bad token accepted")
	}
	if _, ok := node2.Authenticate(""); ok {
		t.Fatal("missing token accepted on a secured node")
	}

	// Auth failures are counted and published, never silent.
	authSub := node2.Subscribe(artemis.KindAuth, 4)
	defer authSub.Cancel()
	node2.ReportAuthFailure("/v1/alerts", "", "bad-token")
	if node2.AuthFailures() != 1 {
		t.Fatalf("auth failures = %d", node2.AuthFailures())
	}
	select {
	case ev := <-authSub.C:
		if ev.Kind != artemis.KindAuth || ev.Auth == nil || ev.Auth.Reason != "bad-token" {
			t.Fatalf("auth event: %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("auth failure not published")
	}
	var sb strings.Builder
	node2.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "artemis_auth_failures_total 1") {
		t.Fatal("auth failures missing from metrics")
	}
}
