package artemis_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"artemis/pkg/artemis"
)

func quiet() artemis.Option {
	return artemis.WithLogf(func(string, ...any) {})
}

// stringInjector records mitigation southbound calls in the public
// string-typed form.
type stringInjector struct {
	mu        sync.Mutex
	announced []string
}

func (s *stringInjector) AnnounceRoute(p string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.announced = append(s.announced, p)
	return nil
}

func (s *stringInjector) WithdrawRoute(string) error { return nil }

func (s *stringInjector) all() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.announced...)
}

// TestNodeEndToEnd drives the embeddable facade without any network:
// inject a hijack, watch typed alert and mitigation events, reconfigure
// live, and drain.
func TestNodeEndToEnd(t *testing.T) {
	inj := &stringInjector{}
	cfg := &artemis.Config{
		Prefixes:   []string{"10.0.0.0/23"},
		Origins:    []uint32{61000},
		Mitigation: artemis.MitigationConfig{ConfigDelay: artemis.Duration(time.Millisecond)},
	}
	node, err := artemis.New(cfg, quiet(), artemis.WithRouteInjector(inj))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- node.Run(ctx) }()

	sub := node.Subscribe(artemis.KindAlert|artemis.KindMitigation, 16)
	defer sub.Cancel()

	// Benign announcement: no alert.
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 100, Prefix: "10.0.0.0/23", Path: []uint32{100, 2000, 61000},
	}); err != nil {
		t.Fatal(err)
	}
	// Exact-origin hijack: alert + de-aggregated mitigation.
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 100, Prefix: "10.0.0.0/23", Path: []uint32{100, 2000, 666},
	}); err != nil {
		t.Fatal(err)
	}
	var alert, mitigation *artemis.Event
	deadline := time.After(5 * time.Second)
	for alert == nil || mitigation == nil {
		select {
		case ev := <-sub.C:
			switch ev.Kind {
			case artemis.KindAlert:
				alert = &ev
			case artemis.KindMitigation:
				mitigation = &ev
			}
		case <-deadline:
			t.Fatalf("no alert+mitigation events (alert=%v mitigation=%v)", alert, mitigation)
		}
	}
	if alert.Alert.Type != "exact-origin" || alert.Alert.Prefix != "10.0.0.0/23" || alert.Alert.Origin != 666 {
		t.Fatalf("alert: %+v", alert.Alert)
	}
	if len(mitigation.Mitigation.Prefixes) != 2 || mitigation.Mitigation.Competitive ||
		mitigation.Mitigation.Error != "" {
		t.Fatalf("mitigation: %+v", mitigation.Mitigation)
	}
	waitCond(t, "injector announcements", func() bool { return len(inj.all()) == 2 })
	for _, p := range inj.all() {
		if !strings.HasPrefix(p, "10.0.") || !strings.HasSuffix(p, "/24") {
			t.Fatalf("unexpected announcement %q", p)
		}
	}

	// Live reconfiguration via the facade: a prefix that was not owned
	// starts alerting after AddPrefixes.
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 101, Prefix: "192.0.2.0/24", Path: []uint32{101, 2000, 666},
	}); err != nil {
		t.Fatal(err)
	}
	if err := node.AddPrefixes("192.0.2.0/24"); err != nil {
		t.Fatal(err)
	}
	if got := node.Config().Prefixes; len(got) != 2 {
		t.Fatalf("config not updated: %v", got)
	}
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 101, Prefix: "192.0.2.0/24", Path: []uint32{101, 2000, 666},
	}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "exact-origin alert on hot-added prefix", func() bool {
		for _, a := range node.Alerts() {
			if a.Type == "exact-origin" && a.Prefix == "192.0.2.0/24" {
				return true
			}
		}
		return false
	})
	// Errors are surfaced, not swallowed.
	if err := node.AddPrefixes("192.0.2.0/24"); err == nil {
		t.Fatal("duplicate prefix accepted")
	}
	if err := node.RemovePrefixes("203.0.113.0/24"); err == nil {
		t.Fatal("removing unowned prefix accepted")
	}
	if err := node.SetOrigins(); err == nil {
		t.Fatal("empty origin set accepted")
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not drain")
	}
	// Drain after Run is a no-op; the subscription channel is closed.
	node.Drain()
	select {
	case _, ok := <-sub.C:
		if ok {
			// Buffered events may remain; drain to close.
			for range sub.C {
			}
		}
	case <-time.After(time.Second):
		t.Fatal("subscription not closed on drain")
	}
}

// TestNodeDrainWithoutRun: a node that never Runs still releases its
// goroutines on Drain.
func TestNodeDrainWithoutRun(t *testing.T) {
	cfg := &artemis.Config{Prefixes: []string{"10.0.0.0/24"}, Origins: []uint32{1}}
	node, err := artemis.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	node.Drain()
	node.Drain() // idempotent
	// Run after Drain returns promptly (the drained signal is already set).
	done := make(chan error, 1)
	go func() { done <- node.Run(context.Background()) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run after Drain did not return")
	}
}

// TestNodeSourceCRUDBeforeRun: sources declared in config and added via
// AddSource before Run get default names and appear in Config.
func TestNodeSourceCRUDBeforeRun(t *testing.T) {
	cfg := &artemis.Config{
		Prefixes: []string{"10.0.0.0/24"},
		Origins:  []uint32{1},
		Sources: []artemis.SourceSpec{
			{Type: "mrt", Path: "a.mrt"},
			{Type: "mrt", Path: "b.mrt"},
		},
	}
	node, err := artemis.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Drain()
	got := node.Config().Sources
	if len(got) != 2 || got[0].Name != "mrt[0]" || got[1].Name != "mrt[1]" {
		t.Fatalf("default names: %+v", got)
	}
	name, err := node.AddSource(artemis.SourceSpec{Type: "mrt", Path: "c.mrt"})
	if err != nil || name != "mrt[2]" {
		t.Fatalf("AddSource: %q %v", name, err)
	}
	if _, err := node.AddSource(artemis.SourceSpec{Type: "mrt", Path: "c.mrt", Name: "mrt[2]"}); err == nil {
		t.Fatal("duplicate source name accepted")
	}
	if err := node.RemoveSource("mrt[1]"); err != nil {
		t.Fatal(err)
	}
	if err := node.RemoveSource("mrt[1]"); err == nil {
		t.Fatal("double remove accepted")
	}
	if got := node.Config().Sources; len(got) != 2 {
		t.Fatalf("config sources after CRUD: %+v", got)
	}
	h := node.Health()
	if h.Status != "ok" || len(h.Sources) != 0 {
		t.Fatalf("health before Run: %+v", h)
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
