package artemis_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"artemis/internal/rib"
	"artemis/pkg/artemis"
)

// writeRouteIntelFixtures materializes the three route-intelligence
// inputs in a temp dir: a small synthetic full-RIB MRT snapshot, an
// AS-name registry CSV, and a JSON ROA export covering the owned /23.
func writeRouteIntelFixtures(t *testing.T) (mrtPath, namesPath, roaPath string) {
	t.Helper()
	dir := t.TempDir()

	mrtPath = filepath.Join(dir, "rib.mrt")
	var buf bytes.Buffer
	if err := rib.WriteSynth(&buf, rib.SynthConfig{V4: 300, V6: 80, Peers: 4, RoutesPerPrefix: 2, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mrtPath, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}

	namesPath = filepath.Join(dir, "asnames.csv")
	names := "# asn,name,locale\n666,BADNET,XX\n61000,GOODNET,GR\n"
	if err := os.WriteFile(namesPath, []byte(names), 0o600); err != nil {
		t.Fatal(err)
	}

	roaPath = filepath.Join(dir, "roas.json")
	roas := `{"roas": [{"asn": "AS61000", "prefix": "10.0.0.0/23", "maxLength": 23}]}`
	if err := os.WriteFile(roaPath, []byte(roas), 0o600); err != nil {
		t.Fatal(err)
	}
	return mrtPath, namesPath, roaPath
}

// TestNodeRouteIntel drives the route-intelligence surface end to end on
// the embeddable facade: full-RIB bootstrap, glass lookups, live table
// movement via Inject, AS-name enrichment and RPKI verdicts on alerts.
func TestNodeRouteIntel(t *testing.T) {
	mrtPath, namesPath, roaPath := writeRouteIntelFixtures(t)
	cfg := &artemis.Config{
		Prefixes:   []string{"10.0.0.0/23"},
		Origins:    []uint32{61000},
		Mitigation: artemis.MitigationConfig{Manual: true},
		RIB:        artemis.RIBConfig{Path: mrtPath},
		RPKI:       artemis.RPKIConfig{Path: roaPath},
		ASNames:    artemis.ASNamesConfig{Path: namesPath},
	}
	node, err := artemis.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Drain()

	if !node.RIBEnabled() {
		t.Fatal("RIB path configured but table not enabled")
	}
	boot := node.RIBBootstrap()
	if boot.Entries != 380 || boot.V4Routes != 600 || boot.V6Routes != 160 {
		t.Fatalf("bootstrap stats = %+v", boot)
	}
	st := node.RIBStats()
	if st.PrefixesV4 != 300 || st.PrefixesV6 != 80 {
		t.Fatalf("table stats = %+v", st)
	}

	// The synthetic table's first /24 sits at each family's base, so an
	// address lookup resolves through longest match.
	res, found, err := node.Lookup("0.0.0.1")
	if err != nil || !found {
		t.Fatalf("Lookup(0.0.0.1) = %v, %v", found, err)
	}
	if res.Query != "0.0.0.1/32" || res.Matched == "" || len(res.Path) == 0 || res.Candidates < 1 {
		t.Fatalf("lookup result = %+v", res)
	}
	if res.RPKI != "unknown" {
		t.Fatalf("synthetic space verdict = %q, want unknown (no covering ROA)", res.RPKI)
	}
	if _, found, _ := node.Lookup("203.0.113.0/24"); found {
		t.Fatal("uncovered space resolved")
	}
	if _, _, err := node.Lookup("not-a-prefix"); err == nil {
		t.Fatal("bad query accepted")
	}

	// Live movement: an injected announcement lands in the table and the
	// movement counters, not just the detection pipeline.
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 100, Prefix: "198.51.100.0/24", Path: []uint32{100, 2000, 666},
	}); err != nil {
		t.Fatal(err)
	}
	res, found, err = node.Lookup("198.51.100.0/24")
	if err != nil || !found {
		t.Fatalf("injected route not in table: %v, %v", found, err)
	}
	if res.Origin != 666 || res.OriginName != "BADNET" || res.OriginLocale != "XX" {
		t.Fatalf("injected route = %+v, want origin 666 (BADNET, XX)", res)
	}
	if got := node.RIBStats(); got.AnnouncesV4 != 1 {
		t.Fatalf("announce movement counter = %d, want 1", got.AnnouncesV4)
	}

	// A sub-prefix hijack of the ROA'd /23: the alert names the hijacker
	// and carries the invalid verdict as evidence.
	sub := node.Subscribe(artemis.KindAlert, 8)
	defer sub.Cancel()
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 100, Prefix: "10.0.1.0/24", Path: []uint32{100, 2000, 666},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.C:
		a := ev.Alert
		if a.Type != "sub-prefix" || a.Origin != 666 {
			t.Fatalf("alert = %+v", a)
		}
		if a.RPKI != "invalid" {
			t.Fatalf("alert verdict = %q, want invalid", a.RPKI)
		}
		if a.OriginName != "BADNET" || a.OriginLocale != "XX" {
			t.Fatalf("alert enrichment = %q/%q, want BADNET/XX", a.OriginName, a.OriginLocale)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no alert within 5s")
	}
	// Alert history carries the same enrichment.
	alerts := node.Alerts()
	if len(alerts) != 1 || alerts[0].OriginName != "BADNET" || alerts[0].RPKI != "invalid" {
		t.Fatalf("alert history = %+v", alerts)
	}

	// The glass per-AS view: named hijacker, originated table space.
	info, known := node.ASInfo(666)
	if !known || info.Name != "BADNET" || info.PrefixesV4 != 2 {
		t.Fatalf("ASInfo(666) = %+v known=%v, want BADNET with 2 v4 prefixes", info, known)
	}
	if _, known := node.ASInfo(4_200_000_000); known {
		t.Fatal("unknown AS reported as known")
	}
}

// TestNodeRouteIntelDisabled checks the no-RIB behavior: Lookup refuses
// with ErrRIBDisabled and ASInfo still answers from the registry.
func TestNodeRouteIntelDisabled(t *testing.T) {
	_, namesPath, _ := writeRouteIntelFixtures(t)
	cfg := &artemis.Config{
		Prefixes: []string{"10.0.0.0/23"},
		Origins:  []uint32{61000},
		ASNames:  artemis.ASNamesConfig{Path: namesPath},
	}
	node, err := artemis.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Drain()
	if node.RIBEnabled() {
		t.Fatal("RIB enabled without a rib: block")
	}
	if _, _, err := node.Lookup("10.0.0.1"); err != artemis.ErrRIBDisabled {
		t.Fatalf("Lookup error = %v, want ErrRIBDisabled", err)
	}
	info, known := node.ASInfo(61000)
	if !known || info.Name != "GOODNET" {
		t.Fatalf("ASInfo(61000) = %+v known=%v", info, known)
	}
}

// TestNodeRPKIValidFastReject checks that a ROA-valid announcement of
// owned space by a non-configured origin does not alert through the
// public facade.
func TestNodeRPKIValidFastReject(t *testing.T) {
	dir := t.TempDir()
	roaPath := filepath.Join(dir, "roas.json")
	// AS64900 is ROA-authorized for the /24 but not in Origins.
	roas := `{"roas": [{"asn": 64900, "prefix": "10.0.1.0/24", "maxLength": 24}]}`
	if err := os.WriteFile(roaPath, []byte(roas), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg := &artemis.Config{
		Prefixes: []string{"10.0.0.0/23"},
		Origins:  []uint32{61000},
		RPKI:     artemis.RPKIConfig{Path: roaPath},
	}
	node, err := artemis.New(cfg, quiet())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Drain()
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 100, Prefix: "10.0.1.0/24", Path: []uint32{100, 2000, 64900},
	}); err != nil {
		t.Fatal(err)
	}
	// An unauthorized origin on the same space still alerts — proves the
	// pipeline processed both and only the ROA-valid one was rejected.
	if err := node.Inject(artemis.RouteObservation{
		VantagePoint: 100, Prefix: "10.0.1.0/24", Path: []uint32{100, 2000, 666},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		alerts := node.Alerts()
		if len(alerts) == 1 && alerts[0].Origin == 666 {
			if alerts[0].RPKI != "invalid" {
				t.Fatalf("alert verdict = %q", alerts[0].RPKI)
			}
			break
		}
		if len(alerts) > 1 {
			t.Fatalf("ROA-valid announcement alerted: %+v", alerts)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no alert within 5s (have %+v)", alerts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
