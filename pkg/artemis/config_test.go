package artemis

import (
	"strings"
	"testing"
	"time"
)

const fullConfig = `# ARTEMIS declarative configuration
prefixes:
  - 10.0.0.0/23
  - 2001:db8::/32

origins: [61000, 61001]

upstreams:
  61000:
    - 2000
    - 2001

sources:
  - type: ris
    url: ws://127.0.0.1:9000/v1/ws
    name: ris-main
  - type: bgpmon
    addr: 127.0.0.1:9001
  - type: mrt
    path: archive.mrt
  - type: periscope
    url: http://127.0.0.1:9002
    interval: 45s
    lgs: [lg-1001, lg-1002]

mitigation:
  controller: http://127.0.0.1:9003
  config-delay: 15s
  queue-depth: 32
  max-deagg-len: 24
  max-deagg-len6: 48

tuning:
  shards: 4
  source-queue: 128
  dedup-ttl: 10m
  alert-ttl: 24h
  alert-dedup-max: 65536

control:
  listen: 127.0.0.1:9130
`

func TestParseConfigFull(t *testing.T) {
	cfg, err := ParseConfig([]byte(fullConfig), "artemis.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Prefixes; len(got) != 2 || got[0] != "10.0.0.0/23" || got[1] != "2001:db8::/32" {
		t.Fatalf("prefixes: %v", got)
	}
	if got := cfg.Origins; len(got) != 2 || got[0] != 61000 || got[1] != 61001 {
		t.Fatalf("origins: %v", got)
	}
	if got := cfg.Upstreams[61000]; len(got) != 2 || got[0] != 2000 || got[1] != 2001 {
		t.Fatalf("upstreams: %v", cfg.Upstreams)
	}
	if len(cfg.Sources) != 4 {
		t.Fatalf("sources: %+v", cfg.Sources)
	}
	if s := cfg.Sources[0]; s.Type != "ris" || s.Name != "ris-main" || s.URL != "ws://127.0.0.1:9000/v1/ws" {
		t.Fatalf("ris source: %+v", s)
	}
	if s := cfg.Sources[3]; s.Type != "periscope" || s.Interval.Std() != 45*time.Second ||
		len(s.LGs) != 2 || s.LGs[0] != "lg-1001" {
		t.Fatalf("periscope source: %+v", s)
	}
	if cfg.Mitigation.Controller != "http://127.0.0.1:9003" ||
		cfg.Mitigation.ConfigDelay.Std() != 15*time.Second ||
		cfg.Mitigation.QueueDepth != 32 {
		t.Fatalf("mitigation: %+v", cfg.Mitigation)
	}
	if cfg.Tuning.Shards != 4 || cfg.Tuning.DedupTTL.Std() != 10*time.Minute ||
		cfg.Tuning.AlertTTL.Std() != 24*time.Hour || cfg.Tuning.AlertDedupMax != 65536 {
		t.Fatalf("tuning: %+v", cfg.Tuning)
	}
	if cfg.Control.Listen != "127.0.0.1:9130" {
		t.Fatalf("control: %+v", cfg.Control)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("parsed config fails Validate: %v", err)
	}
	// Clone round-trip: a deep copy is independent.
	clone := cfg.Clone()
	clone.Prefixes[0] = "changed"
	clone.Sources[3].LGs[0] = "changed"
	clone.Upstreams[61000][0] = 9
	if cfg.Prefixes[0] == "changed" || cfg.Sources[3].LGs[0] == "changed" || cfg.Upstreams[61000][0] == 9 {
		t.Fatal("Clone is shallow")
	}
}

// TestParseConfigErrorPositions asserts that every class of config
// mistake is reported with the file name and the offending line.
func TestParseConfigErrorPositions(t *testing.T) {
	cases := []struct {
		name    string
		yaml    string
		wantPos string // "file:line" prefix
		wantMsg string // substring of the message
	}{
		{
			name:    "bad prefix",
			yaml:    "prefixes:\n  - 10.0.0.0/23\n  - not-a-prefix\norigins: [1]\n",
			wantPos: "t.yaml:3:",
			wantMsg: "bad prefix",
		},
		{
			name:    "bad origin",
			yaml:    "prefixes:\n  - 10.0.0.0/23\norigins:\n  - sixty\n",
			wantPos: "t.yaml:4:",
			wantMsg: "bad ASN",
		},
		{
			name:    "unknown top-level key",
			yaml:    "prefixes: [10.0.0.0/23]\norigins: [1]\nprefixxes: [10.0.0.0/24]\n",
			wantPos: "t.yaml:3:",
			wantMsg: `unknown key "prefixxes"`,
		},
		{
			name:    "missing prefixes",
			yaml:    "origins: [1]\n",
			wantPos: "t.yaml:1:",
			wantMsg: "missing required key",
		},
		{
			name:    "source missing field",
			yaml:    "prefixes: [10.0.0.0/23]\norigins: [1]\nsources:\n  - type: ris\n",
			wantPos: "t.yaml:4:",
			wantMsg: "ris source needs url",
		},
		{
			name:    "unknown source type",
			yaml:    "prefixes: [10.0.0.0/23]\norigins: [1]\nsources:\n  - type: carrier-pigeon\n",
			wantPos: "t.yaml:4:",
			wantMsg: "unknown source type",
		},
		{
			name:    "bad duration",
			yaml:    "prefixes: [10.0.0.0/23]\norigins: [1]\ntuning:\n  dedup-ttl: fortnight\n",
			wantPos: "t.yaml:4:",
			wantMsg: "duration",
		},
		{
			name:    "duplicate key",
			yaml:    "prefixes: [10.0.0.0/23]\nprefixes: [10.0.0.0/24]\n",
			wantPos: "t.yaml:2:",
			wantMsg: "duplicate key",
		},
		{
			name:    "duplicate prefix",
			yaml:    "prefixes:\n  - 10.0.0.0/23\n  - 10.0.0.0/23\norigins: [1]\n",
			wantPos: "t.yaml:3:",
			wantMsg: "duplicate prefix",
		},
		{
			name:    "tab indentation",
			yaml:    "prefixes:\n\t- 10.0.0.0/23\n",
			wantPos: "t.yaml:2:",
			wantMsg: "tab",
		},
		{
			name:    "bad upstream key",
			yaml:    "prefixes: [10.0.0.0/23]\norigins: [1]\nupstreams:\n  not-an-asn:\n    - 2000\n",
			wantPos: "t.yaml:5:",
			wantMsg: "bad origin ASN",
		},
		{
			name:    "duplicate source name",
			yaml:    "prefixes: [10.0.0.0/23]\norigins: [1]\nsources:\n  - type: mrt\n    path: a.mrt\n    name: x\n  - type: mrt\n    path: b.mrt\n    name: x\n",
			wantPos: "t.yaml:7:",
			wantMsg: "duplicate source name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig([]byte(tc.yaml), "t.yaml")
			if err == nil {
				t.Fatalf("config accepted:\n%s", tc.yaml)
			}
			if !strings.HasPrefix(err.Error(), tc.wantPos) {
				t.Fatalf("error %q does not point at %q", err, tc.wantPos)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// TestParseConfigQuotedHash: '#' inside a quoted scalar is content, not
// a comment; an unquoted '#' glued to a value survives too.
func TestParseConfigQuotedHash(t *testing.T) {
	yaml := "prefixes: [10.0.0.0/23]\norigins: [1]\nsources:\n" +
		"  - type: mrt\n    path: \"dir #1/x.mrt\" # a real comment\n    name: 'feed #1'\n" +
		"control:\n  listen: host:9130#frag\n"
	cfg, err := ParseConfig([]byte(yaml), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sources[0].Path != "dir #1/x.mrt" || cfg.Sources[0].Name != "feed #1" {
		t.Fatalf("quoted # mangled: %+v", cfg.Sources[0])
	}
	if cfg.Control.Listen != "host:9130#frag" {
		t.Fatalf("glued # mangled: %q", cfg.Control.Listen)
	}
}

func TestDurationJSON(t *testing.T) {
	d := Duration(15 * time.Second)
	b, err := d.MarshalJSON()
	if err != nil || string(b) != `"15s"` {
		t.Fatalf("marshal: %s %v", b, err)
	}
	var back Duration
	if err := back.UnmarshalJSON([]byte(`"10m"`)); err != nil || back.Std() != 10*time.Minute {
		t.Fatalf("unmarshal: %v %v", back, err)
	}
	if err := back.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Fatal("numeric duration accepted")
	}
}

// TestParseConfigRouteIntel covers the rib:/rpki:/asnames: blocks that
// configure the route table, origin validation and AS-name enrichment.
func TestParseConfigRouteIntel(t *testing.T) {
	yaml := `prefixes: [10.0.0.0/23]
origins: [61000]
rib:
  path: testdata/rib.mrt
rpki:
  url: http://127.0.0.1:8323/json
  refresh: 1h
asnames:
  path: asnames.csv
`
	cfg, err := ParseConfig([]byte(yaml), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.RIB.Enabled || cfg.RIB.Path != "testdata/rib.mrt" {
		t.Fatalf("rib = %+v (a path must imply enabled)", cfg.RIB)
	}
	if cfg.RPKI.URL != "http://127.0.0.1:8323/json" || cfg.RPKI.Refresh.Std() != time.Hour {
		t.Fatalf("rpki = %+v", cfg.RPKI)
	}
	if cfg.ASNames.Path != "asnames.csv" {
		t.Fatalf("asnames = %+v", cfg.ASNames)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	// A live-only table: enabled without a bootstrap path.
	cfg, err = ParseConfig([]byte("prefixes: [10.0.0.0/23]\norigins: [61000]\nrib:\n  enabled: true\n"), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.RIB.Enabled || cfg.RIB.Path != "" {
		t.Fatalf("rib = %+v", cfg.RIB)
	}

	bad := []struct {
		yaml string
		msg  string
	}{
		{"prefixes: [10.0.0.0/23]\norigins: [1]\nrpki:\n  path: a.json\n  url: http://x/json\n", "path or url, not both"},
		{"prefixes: [10.0.0.0/23]\norigins: [1]\nrpki:\n  refresh: 1h\n", "refresh needs a url"},
		{"prefixes: [10.0.0.0/23]\norigins: [1]\nrib:\n  pathh: x\n", `unknown key "pathh"`},
		{"prefixes: [10.0.0.0/23]\norigins: [1]\nasnames:\n  url: http://x\n", `unknown key "url"`},
	}
	for _, c := range bad {
		if _, err := ParseConfig([]byte(c.yaml), "t.yaml"); err == nil || !strings.Contains(err.Error(), c.msg) {
			t.Errorf("yaml %q: err = %v, want %q", c.yaml, err, c.msg)
		}
	}
}
