package control

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"artemis/pkg/artemis"
)

// lookupCacheTTL bounds how stale a cached glass answer may be. Route
// lookups are read-heavy and tolerate seconds of staleness (the table
// itself only changes at feed pace), so a short TTL absorbs dashboard
// refresh storms without serving stale routes for long.
const lookupCacheTTL = 2 * time.Second

// lookupCacheMax bounds the cache; beyond it the oldest entry is
// evicted, ttlset-style (insertion order, first-wins: a refreshed key
// does not extend its life).
const lookupCacheMax = 1024

type cacheEntry struct {
	body []byte
	at   time.Time
}

// respCache is a bounded TTL'd response cache for the glass endpoints.
// Same shape as internal/ttlset but carrying values: entries expire
// lookupCacheTTL after insertion and the oldest is evicted at capacity.
type respCache struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu sync.Mutex
	m  map[string]cacheEntry
	q  []string // insertion order; head is the eviction candidate
}

func newRespCache() *respCache {
	return &respCache{m: make(map[string]cacheEntry)}
}

func (c *respCache) get(key string, now time.Time) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if ok && now.Sub(e.at) < lookupCacheTTL {
		c.hits.Add(1)
		return e.body, true
	}
	if ok {
		delete(c.m, key)
	}
	c.misses.Add(1)
	return nil, false
}

func (c *respCache) put(key string, body []byte, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok {
		for len(c.m) >= lookupCacheMax && len(c.q) > 0 {
			delete(c.m, c.q[0])
			c.q = c.q[1:]
		}
		c.q = append(c.q, key)
	}
	c.m[key] = cacheEntry{body: body, at: now}
}

// marshalCached renders a cacheable JSON body, reporting the (unlikely)
// encode failure to the client.
func marshalCached(w http.ResponseWriter, v any) ([]byte, bool) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, false
	}
	return append(body, '\n'), true
}

// writeCached serves a prebuilt JSON body with its cache disposition.
func writeCached(w http.ResponseWriter, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// getLookup answers GET /v1/lookup/{prefix}: the best route the node's
// table holds for the longest prefix covering the query (a prefix, slash
// included thanks to the {prefix...} wildcard, or a bare address).
// Answers are cached for lookupCacheTTL; X-Cache reports hit/miss.
func (s *Server) getLookup(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	query := r.PathValue("prefix")
	key := "lookup/" + query
	now := time.Now()
	if body, ok := s.cache.get(key, now); ok {
		writeCached(w, body, true)
		return
	}
	res, found, err := s.node.Lookup(query)
	switch {
	case errors.Is(err, artemis.ErrRIBDisabled):
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case !found:
		writeError(w, http.StatusNotFound, "no route for %s", res.Query)
		return
	}
	body, ok := marshalCached(w, res)
	if !ok {
		return
	}
	s.cache.put(key, body, now)
	writeCached(w, body, false)
}

// getAS answers GET /v1/as/{asn}: the AS's registry name/locale plus how
// many table prefixes its best routes currently originate.
func (s *Server) getAS(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	raw := r.PathValue("asn")
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad asn %q", raw)
		return
	}
	key := "as/" + raw
	now := time.Now()
	if body, ok := s.cache.get(key, now); ok {
		writeCached(w, body, true)
		return
	}
	info, known := s.node.ASInfo(uint32(v))
	if !known {
		writeError(w, http.StatusNotFound, "nothing known about AS%d", v)
		return
	}
	body, ok := marshalCached(w, info)
	if !ok {
		return
	}
	s.cache.put(key, body, now)
	writeCached(w, body, false)
}
