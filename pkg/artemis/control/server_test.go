package control_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/feeds/bgpmon"
	"artemis/internal/feeds/ris"
	"artemis/internal/prefix"
	"artemis/internal/sim"
	"artemis/internal/simnet"
	"artemis/internal/topo"
	"artemis/pkg/artemis"
	"artemis/pkg/artemis/control"
)

// testInjector records mitigation announcements.
type testInjector struct {
	mu        sync.Mutex
	announced []string
}

func (t *testInjector) AnnounceRoute(p string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.announced = append(t.announced, p)
	return nil
}
func (t *testInjector) WithdrawRoute(string) error { return nil }
func (t *testInjector) all() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.announced...)
}

// controlHarness is a full live stack: a simulated Internet exposing a
// real RIS websocket server and a real BGPmon TCP server, an embedded
// node consuming them as network clients, and the control plane over
// httptest.
type controlHarness struct {
	t        *testing.T
	eng      *sim.Engine
	nw       *simnet.Network
	risAddr  string
	bmonAddr string
	node     *artemis.Node
	srv      *control.Server
	api      *httptest.Server
	inj      *testInjector
	cancel   context.CancelFunc
	runDone  chan error

	pumpStop chan struct{}
	pumpDone chan struct{}

	mu sync.Mutex
	on map[string]bool // churning announcements currently up
}

func newControlHarness(t *testing.T) *controlHarness {
	t.Helper()
	h := &controlHarness{t: t, runDone: make(chan error, 1),
		pumpStop: make(chan struct{}), pumpDone: make(chan struct{}), on: map[string]bool{}}
	tp := topo.Line(6, 5*time.Millisecond)
	h.eng = sim.NewEngine(1)
	h.nw = simnet.New(tp, h.eng, simnet.Config{MRAI: simnet.Disabled, ProcMin: time.Millisecond, ProcMax: 2 * time.Millisecond})

	// Real RIS websocket server over the sim.
	risSvc := ris.New(h.nw, []ris.CollectorConfig{
		{Name: "rrc00", Peers: []bgp.ASN{topo.FirstASN + 3, topo.FirstASN + 4}, BatchDelay: 50 * time.Millisecond},
	})
	risLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	risHTTP := &http.Server{Handler: ris.NewServer(risSvc)}
	go risHTTP.Serve(risLn)
	t.Cleanup(func() { risHTTP.Close() })
	h.risAddr = risLn.Addr().String()

	// Real BGPmon XML server — hot-added as the second feed mid-test.
	bmonSvc := bgpmon.New(h.nw, bgpmon.Config{
		Peers: []bgp.ASN{topo.FirstASN + 5}, MinDelay: 50 * time.Millisecond, MaxDelay: 100 * time.Millisecond,
	})
	bmonSrv, err := bgpmon.NewServer(bmonSvc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bmonSrv.Close() })
	h.bmonAddr = bmonSrv.Addr()

	// Engine pump: the sim advances continuously, like a paced run.
	go func() {
		defer close(h.pumpDone)
		for {
			select {
			case <-h.pumpStop:
				return
			default:
				h.eng.Run()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	t.Cleanup(func() { close(h.pumpStop); <-h.pumpDone })
	return h
}

// start builds the node from a declarative config and serves the control
// plane.
func (h *controlHarness) start(cfg *artemis.Config) {
	h.t.Helper()
	h.inj = &testInjector{}
	node, err := artemis.New(cfg,
		artemis.WithRouteInjector(h.inj),
		artemis.WithLogf(func(string, ...any) {}))
	if err != nil {
		h.t.Fatal(err)
	}
	h.node = node
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	go func() { h.runDone <- node.Run(ctx) }()
	h.srv = control.NewServer(node)
	h.api = httptest.NewServer(h.srv.Handler())
	h.t.Cleanup(func() {
		h.api.Close()
		h.srv.Shutdown(context.Background())
		cancel()
		select {
		case <-h.runDone:
		case <-time.After(10 * time.Second):
			h.t.Error("node did not drain")
		}
	})
}

// churn toggles an announcement so feed subscribers always have fresh
// route changes to observe regardless of when they (re)connected.
func (h *controlHarness) churn(asn bgp.ASN, p prefix.Prefix) {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := fmt.Sprintf("%d|%s", asn, p)
	var err error
	if h.on[key] {
		err = h.nw.Withdraw(asn, p)
	} else {
		err = h.nw.Announce(asn, p)
	}
	if err != nil {
		h.t.Fatalf("churn %s: %v", key, err)
	}
	h.on[key] = !h.on[key]
}

// api helpers

func (h *controlHarness) get(path string, out any) int {
	h.t.Helper()
	resp, err := http.Get(h.api.URL + path)
	if err != nil {
		h.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			h.t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func (h *controlHarness) send(method, path string, body any, out any) int {
	h.t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		h.t.Fatal(err)
	}
	req, err := http.NewRequest(method, h.api.URL+path, bytes.NewReader(b))
	if err != nil {
		h.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			h.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func (h *controlHarness) waitAPI(what string, cond func() bool) {
	h.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.t.Fatalf("timed out waiting for %s", what)
}

// TestControlPlaneHotReconfiguration is the end-to-end acceptance path:
// start from a config file with one live feed, then — over HTTP, while
// traffic flows — hot-add an owned prefix and a second feed, hijack the
// new prefix, and verify it is detected and mitigated with no restart.
func TestControlPlaneHotReconfiguration(t *testing.T) {
	h := newControlHarness(t)
	victim := topo.FirstASN
	attacker := topo.FirstASN + 1
	owned1 := prefix.MustParse("10.0.0.0/23")
	owned2 := prefix.MustParse("172.16.0.0/22")

	// The declarative config an artemis.yaml would hold.
	yaml := fmt.Sprintf(`
prefixes:
  - 10.0.0.0/23
origins: [%d]
sources:
  - type: ris
    url: ws://%s/v1/ws
mitigation:
  config-delay: 1ms
tuning:
  dedup-ttl: 1h
`, uint32(victim), h.risAddr)
	cfg, err := artemis.ParseConfig([]byte(yaml), "artemis.yaml")
	if err != nil {
		t.Fatal(err)
	}
	h.start(cfg)

	// Live SSE stream of everything, collected in the background.
	var sseMu sync.Mutex
	var sseFrames []string
	sseResp, err := http.Get(h.api.URL + "/v1/alerts/stream")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sseResp.Body.Close() })
	go func() {
		scanner := bufio.NewScanner(sseResp.Body)
		for scanner.Scan() {
			sseMu.Lock()
			sseFrames = append(sseFrames, scanner.Text())
			sseMu.Unlock()
		}
	}()
	sseHas := func(substr string) bool {
		sseMu.Lock()
		defer sseMu.Unlock()
		for _, l := range sseFrames {
			if strings.Contains(l, substr) {
				return true
			}
		}
		return false
	}

	// The RIS feed connects and the victim's legitimate announcement
	// flows through: events visible in /v1/sources, no alerts.
	h.waitAPI("ris healthy", func() bool {
		var out struct {
			Sources []artemis.SourceStatus `json:"sources"`
		}
		h.get("/v1/sources", &out)
		return len(out.Sources) == 1 && out.Sources[0].State == "healthy"
	})
	h.waitAPI("legit traffic observed", func() bool {
		h.churn(victim, owned1)
		var out struct {
			Sources []artemis.SourceStatus `json:"sources"`
		}
		h.get("/v1/sources", &out)
		return len(out.Sources) == 1 && out.Sources[0].Events > 0
	})
	var alerts struct {
		Alerts []artemis.Alert `json:"alerts"`
	}
	h.get("/v1/alerts", &alerts)
	if len(alerts.Alerts) != 0 {
		t.Fatalf("spurious alerts: %+v", alerts.Alerts)
	}

	// --- Hot-add an owned prefix over HTTP. ---
	if code := h.send("POST", "/v1/prefixes", map[string]any{"prefixes": []string{owned2.String()}}, nil); code != http.StatusOK {
		t.Fatalf("POST /v1/prefixes: %d", code)
	}
	var gotCfg artemis.Config
	h.get("/v1/config", &gotCfg)
	if len(gotCfg.Prefixes) != 2 || gotCfg.Prefixes[1] != owned2.String() {
		t.Fatalf("config after hot-add: %+v", gotCfg.Prefixes)
	}
	// Adding the same prefix again must fail.
	if code := h.send("POST", "/v1/prefixes", map[string]any{"prefixes": []string{owned2.String()}}, nil); code != http.StatusBadRequest {
		t.Fatalf("duplicate prefix add: %d", code)
	}

	// --- Hot-add a second feed (the BGPmon server) over HTTP. ---
	var added struct {
		Name string `json:"name"`
	}
	if code := h.send("POST", "/v1/sources", artemis.SourceSpec{Type: "bgpmon", Addr: h.bmonAddr}, &added); code != http.StatusCreated {
		t.Fatalf("POST /v1/sources: %d", code)
	}
	if added.Name != "bgpmon[0]" {
		t.Fatalf("source name: %q", added.Name)
	}
	h.waitAPI("both feeds healthy", func() bool {
		var out struct {
			Sources []artemis.SourceStatus `json:"sources"`
		}
		h.get("/v1/sources", &out)
		healthy := 0
		for _, s := range out.Sources {
			if s.State == "healthy" {
				healthy++
			}
		}
		return healthy == 2
	})

	// --- Hijack the hot-added prefix: detection + mitigation, no restart. ---
	h.waitAPI("hijack of hot-added prefix detected", func() bool {
		h.churn(attacker, owned2)
		h.get("/v1/alerts", &alerts)
		for _, a := range alerts.Alerts {
			if a.Type == "exact-origin" && a.Prefix == owned2.String() && a.Origin == uint32(attacker) {
				return true
			}
		}
		return false
	})
	// Mitigation: the /22 de-aggregates into two /23s through the injector.
	h.waitAPI("mitigation announced", func() bool { return len(h.inj.all()) >= 2 })
	want := map[string]bool{"172.16.0.0/23": true, "172.16.2.0/23": true}
	for _, p := range h.inj.all() {
		if !want[p] {
			t.Fatalf("unexpected mitigation announcement %q (all: %v)", p, h.inj.all())
		}
	}
	var mits struct {
		Mitigations []artemis.Mitigation `json:"mitigations"`
	}
	h.get("/v1/mitigations", &mits)
	if len(mits.Mitigations) == 0 || mits.Mitigations[0].Alert.Prefix != owned2.String() {
		t.Fatalf("mitigation history: %+v", mits.Mitigations)
	}

	// The SSE stream carried the alert and the mitigation outcome.
	h.waitAPI("SSE alert frame", func() bool { return sseHas("event: alert") && sseHas(owned2.String()) })
	h.waitAPI("SSE mitigation frame", func() bool { return sseHas("event: mitigation") })

	// --- Health + metrics reflect the reconfigured, two-feed state. ---
	var health artemis.Health
	if code := h.get("/v1/health", &health); code != http.StatusOK {
		t.Fatalf("health status code: %d", code)
	}
	if health.Status != "ok" || len(health.Sources) != 2 {
		t.Fatalf("health: %+v", health)
	}
	metricsResp, err := http.Get(h.api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	for _, want := range []string{
		"artemis_pipeline_reconfigs_total 1",
		"artemis_alerts_total 1",
		`artemis_ingest_source_events_total{source="bgpmon[0]"}`,
		"artemis_mitigation_handled_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// --- Hot-remove the first feed; the node keeps running on the second. ---
	if code := h.send("DELETE", "/v1/sources", map[string]string{"name": "ris[0]"}, nil); code != http.StatusOK {
		t.Fatalf("DELETE /v1/sources: %d", code)
	}
	if code := h.send("DELETE", "/v1/sources", map[string]string{"name": "ris[0]"}, nil); code != http.StatusNotFound {
		t.Fatal("double source delete accepted")
	}
	var cfgAfter artemis.Config
	h.get("/v1/config", &cfgAfter)
	if len(cfgAfter.Sources) != 1 || cfgAfter.Sources[0].Type != "bgpmon" {
		t.Fatalf("sources after delete: %+v", cfgAfter.Sources)
	}

	// --- Prefix hot-remove: the detached space stops alerting. ---
	if code := h.send("DELETE", "/v1/prefixes", map[string]any{"prefixes": []string{owned1.String()}}, nil); code != http.StatusOK {
		t.Fatal("DELETE /v1/prefixes failed")
	}
	var prefixes struct {
		Prefixes []string `json:"prefixes"`
	}
	h.get("/v1/prefixes", &prefixes)
	if len(prefixes.Prefixes) != 1 || prefixes.Prefixes[0] != owned2.String() {
		t.Fatalf("prefixes after delete: %+v", prefixes.Prefixes)
	}
}

// TestControlServerGracefulShutdown: Shutdown ends SSE streams and
// in-flight serving, the daemon drain-path contract for the merged
// metrics+control server.
func TestControlServerGracefulShutdown(t *testing.T) {
	cfg := &artemis.Config{Prefixes: []string{"10.0.0.0/24"}, Origins: []uint32{1}}
	node, err := artemis.New(cfg, artemis.WithLogf(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Drain()
	srv := control.NewServer(node)
	go srv.ListenAndServe("127.0.0.1:0")
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never bound")
		}
		time.Sleep(time.Millisecond)
	}
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/v1/alerts/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	streamEnded := make(chan struct{})
	go func() {
		io.ReadAll(resp.Body) // blocks until the server ends the stream
		close(streamEnded)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(ctx) }()
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown hung (SSE stream not released)")
	}
	select {
	case <-streamEnded:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open after shutdown")
	}
	if _, err := http.Get(base + "/v1/health"); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
}
