package control_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"artemis/internal/rib"
	"artemis/pkg/artemis"
	"artemis/pkg/artemis/control"
)

// newLookupHarness builds a secured node with a bootstrapped route
// table, an AS-name registry and two credentials (admin + tenant token),
// served over httptest.
func newLookupHarness(t testing.TB) (*artemis.Node, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	mrtPath := filepath.Join(dir, "rib.mrt")
	var buf bytes.Buffer
	if err := rib.WriteSynth(&buf, rib.SynthConfig{V4: 500, V6: 120, Peers: 4, RoutesPerPrefix: 2, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mrtPath, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	namesPath := filepath.Join(dir, "asnames.csv")
	if err := os.WriteFile(namesPath, []byte("666,BADNET,XX\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg := &artemis.Config{
		Prefixes: []string{"10.0.0.0/23"},
		Origins:  []uint32{61000},
		Tenants: []artemis.TenantSpec{{
			Name: "acme", Prefixes: []string{"192.0.2.0/24"}, Origins: []uint32{64500}, Token: "acme-token",
		}},
		Control: artemis.ControlConfig{AdminToken: "admin-token"},
		RIB:     artemis.RIBConfig{Path: mrtPath},
		ASNames: artemis.ASNamesConfig{Path: namesPath},
	}
	node, err := artemis.New(cfg, artemis.WithLogf(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	srv := control.NewServer(node)
	api := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		api.Close()
		node.Drain()
	})
	return node, api
}

// get performs an authenticated GET and returns status, X-Cache and body.
func get(t testing.TB, url, token string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Cache"), body
}

// TestLookupEndpoints drives the glass API end to end: prefix and
// address lookups behind the TTL cache, per-AS answers, tenant-token
// access and the cache counters in /metrics.
func TestLookupEndpoints(t *testing.T) {
	_, api := newLookupHarness(t)

	// First lookup misses the cache; the synthetic table's first /24 sits
	// at the v4 base so the query resolves. Note the prefix's slash rides
	// inside the path ({prefix...} wildcard).
	status, cache, body := get(t, api.URL+"/v1/lookup/0.0.0.0/24", "admin-token")
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("first lookup: status=%d cache=%q body=%s", status, cache, body)
	}
	var res artemis.LookupResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Matched != "0.0.0.0/24" || len(res.Path) == 0 || res.Candidates != 2 {
		t.Fatalf("lookup result = %+v", res)
	}

	// Same query again: served from cache, byte-identical.
	status, cache, body2 := get(t, api.URL+"/v1/lookup/0.0.0.0/24", "admin-token")
	if status != http.StatusOK || cache != "hit" {
		t.Fatalf("second lookup: status=%d cache=%q", status, cache)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cached body differs from original")
	}

	// A bare address resolves by longest match.
	status, _, body = get(t, api.URL+"/v1/lookup/0.0.0.7", "admin-token")
	if status != http.StatusOK {
		t.Fatalf("address lookup: status=%d body=%s", status, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Query != "0.0.0.7/32" || res.Matched != "0.0.0.0/24" {
		t.Fatalf("address lookup result = %+v", res)
	}

	// Tenant tokens may use the glass endpoints (scoped, not admin-only).
	if status, _, body := get(t, api.URL+"/v1/lookup/0.0.0.0/24", "acme-token"); status != http.StatusOK {
		t.Fatalf("tenant-token lookup: status=%d body=%s", status, body)
	}
	// No token on a secured node: 401.
	if status, _, _ := get(t, api.URL+"/v1/lookup/0.0.0.0/24", ""); status != http.StatusUnauthorized {
		t.Fatalf("unauthenticated lookup: status=%d", status)
	}

	// Misses and junk.
	if status, _, _ := get(t, api.URL+"/v1/lookup/203.0.113.0/24", "admin-token"); status != http.StatusNotFound {
		t.Fatalf("uncovered lookup: status=%d", status)
	}
	if status, _, _ := get(t, api.URL+"/v1/lookup/junk", "admin-token"); status != http.StatusBadRequest {
		t.Fatalf("junk lookup: status=%d", status)
	}

	// Per-AS view: the registry knows AS666 even with nothing originated.
	status, _, body = get(t, api.URL+"/v1/as/666", "admin-token")
	if status != http.StatusOK {
		t.Fatalf("as lookup: status=%d body=%s", status, body)
	}
	var info artemis.ASInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "BADNET" || info.Locale != "XX" || info.PrefixesV4 != 0 {
		t.Fatalf("as info = %+v", info)
	}
	if status, _, _ := get(t, api.URL+"/v1/as/4200000000", "admin-token"); status != http.StatusNotFound {
		t.Fatalf("unknown as: status=%d", status)
	}
	if status, _, _ := get(t, api.URL+"/v1/as/not-a-number", "admin-token"); status != http.StatusBadRequest {
		t.Fatalf("bad asn: status=%d", status)
	}

	// The cache counters surface in /metrics alongside the table stats.
	status, _, body = get(t, api.URL+"/metrics", "admin-token")
	if status != http.StatusOK {
		t.Fatalf("metrics: status=%d", status)
	}
	metrics := string(body)
	// Two hits by now: the repeat admin lookup and the tenant's lookup of
	// the same (token-independent) cache key.
	for _, want := range []string{
		"artemis_lookup_cache_hits_total 2",
		"artemis_rib_prefixes{family=\"4\"} 500",
		"artemis_rib_routes 1240",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestLookupWithoutRIB checks the disabled-table answer.
func TestLookupWithoutRIB(t *testing.T) {
	cfg := &artemis.Config{Prefixes: []string{"10.0.0.0/23"}, Origins: []uint32{61000}}
	node, err := artemis.New(cfg, artemis.WithLogf(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Drain()
	api := httptest.NewServer(control.NewServer(node).Handler())
	defer api.Close()
	status, _, body := get(t, api.URL+"/v1/lookup/10.0.0.1", "")
	if status != http.StatusNotFound || !strings.Contains(string(body), "not enabled") {
		t.Fatalf("lookup without rib: status=%d body=%s", status, body)
	}
}

// BenchmarkLookupEndpoint measures the glass lookup round trip through
// the mux and auth (no network), rotating queries across a small working
// set so both cache hits and the underlying table lookup are exercised.
func BenchmarkLookupEndpoint(b *testing.B) {
	_, api := newLookupHarness(b)
	queries := make([]*http.Request, 8)
	for i := range queries {
		req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/lookup/0.0.%d.0/24", api.URL, i), nil)
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer admin-token")
		queries[i] = req
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.DefaultClient.Do(queries[i%len(queries)])
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
