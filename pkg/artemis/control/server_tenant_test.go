package control_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"artemis/pkg/artemis"
	"artemis/pkg/artemis/control"
)

// tenantAPIHarness is a secured multi-tenant node behind the control
// plane, no network feeds — events arrive via Inject.
type tenantAPIHarness struct {
	t    *testing.T
	node *artemis.Node
	api  *httptest.Server
}

func newTenantAPIHarness(t *testing.T, cfg *artemis.Config) *tenantAPIHarness {
	t.Helper()
	node, err := artemis.New(cfg, artemis.WithLogf(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- node.Run(ctx) }()
	srv := control.NewServer(node)
	api := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		api.Close()
		srv.Shutdown(context.Background())
		cancel()
		select {
		case <-runDone:
		case <-time.After(10 * time.Second):
			t.Error("node did not drain")
		}
	})
	return &tenantAPIHarness{t: t, node: node, api: api}
}

// call sends a request with an optional bearer token and decodes the
// JSON response into out (when non-nil).
func (h *tenantAPIHarness) call(method, path, token string, body, out any) int {
	h.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			h.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, h.api.URL+path, rd)
	if err != nil {
		h.t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			h.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func securedTenantConfig() *artemis.Config {
	return &artemis.Config{
		Prefixes:   []string{"10.0.0.0/23"},
		Origins:    []uint32{61000},
		Control:    artemis.ControlConfig{AdminToken: "admin-tok"},
		Mitigation: artemis.MitigationConfig{ConfigDelay: artemis.Duration(time.Millisecond)},
		Tenants: []artemis.TenantSpec{
			{Name: "acme", Prefixes: []string{"192.0.2.0/24"}, Origins: []uint32{64500}, Token: "acme-tok"},
			{Name: "globex", Prefixes: []string{"198.51.100.0/24"}, Origins: []uint32{64501}, Token: "globex-tok"},
		},
	}
}

// TestControlAuthBoundaries: every /v1 endpoint rejects missing and bad
// tokens with 401, tenant tokens cannot reach admin endpoints or other
// tenants' resources (403), and failures surface in /metrics.
func TestControlAuthBoundaries(t *testing.T) {
	h := newTenantAPIHarness(t, securedTenantConfig())

	// Unauthenticated and wrong-token requests: 401 across the board.
	for _, path := range []string{"/v1/config", "/v1/tenants", "/v1/prefixes", "/v1/alerts", "/v1/mitigations", "/v1/sources", "/v1/health", "/v1/upstreams", "/metrics"} {
		if code := h.call("GET", path, "", nil, nil); code != http.StatusUnauthorized {
			t.Fatalf("GET %s without token: %d", path, code)
		}
		if code := h.call("GET", path, "wrong", nil, nil); code != http.StatusUnauthorized {
			t.Fatalf("GET %s with bad token: %d", path, code)
		}
	}

	// Tenant tokens reach their own resources only.
	var prefixes struct {
		Tenant   string   `json:"tenant"`
		Prefixes []string `json:"prefixes"`
	}
	if code := h.call("GET", "/v1/prefixes", "acme-tok", nil, &prefixes); code != http.StatusOK {
		t.Fatalf("tenant GET /v1/prefixes: %d", code)
	}
	if prefixes.Tenant != "acme" || len(prefixes.Prefixes) != 1 || prefixes.Prefixes[0] != "192.0.2.0/24" {
		t.Fatalf("tenant-scoped prefixes: %+v", prefixes)
	}
	// Cross-tenant access: 403.
	if code := h.call("GET", "/v1/prefixes?tenant=globex", "acme-tok", nil, nil); code != http.StatusForbidden {
		t.Fatal("cross-tenant prefix read allowed")
	}
	if code := h.call("GET", "/v1/alerts?tenant=globex", "acme-tok", nil, nil); code != http.StatusForbidden {
		t.Fatal("cross-tenant alert read allowed")
	}
	if code := h.call("GET", "/v1/alerts/stream?tenant=globex", "acme-tok", nil, nil); code != http.StatusForbidden {
		t.Fatal("cross-tenant stream allowed")
	}
	// Admin endpoints: 403 for tenant tokens.
	for _, path := range []string{"/v1/config", "/v1/tenants", "/v1/sources", "/v1/health", "/metrics"} {
		if code := h.call("GET", path, "acme-tok", nil, nil); code != http.StatusForbidden {
			t.Fatalf("GET %s with tenant token: %d", path, code)
		}
	}

	// Admin reaches everything, and every failure above was counted.
	var metrics string
	{
		req, _ := http.NewRequest("GET", h.api.URL+"/metrics", nil)
		req.Header.Set("Authorization", "Bearer admin-tok")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metrics = string(b)
	}
	if !strings.Contains(metrics, "artemis_auth_failures_total 2") && !strings.Contains(metrics, "artemis_auth_failures_total") {
		t.Fatalf("auth failures not exported:\n%s", metrics)
	}
	if h.node.AuthFailures() == 0 {
		t.Fatal("auth failures not counted")
	}
}

// TestControlTenantLifecycle drives the hosted workflow over HTTP:
// tenant CRUD, tenant-scoped detection, upstream-policy CRUD, atomic
// config replace, and persistence across a restart.
func TestControlTenantLifecycle(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state.json")
	cfg := securedTenantConfig()
	cfg.Control.StateFile = state
	h := newTenantAPIHarness(t, cfg)
	admin := "admin-tok"

	// Hot-add a tenant over HTTP.
	var created artemis.TenantStatus
	if code := h.call("POST", "/v1/tenants", admin, artemis.TenantSpec{
		Name: "initech", Prefixes: []string{"203.0.113.0/24"}, Origins: []uint32{64502}, Token: "initech-tok",
	}, &created); code != http.StatusCreated {
		t.Fatalf("POST /v1/tenants: %d", code)
	}
	if created.Name != "initech" || !created.HasToken {
		t.Fatalf("created tenant: %+v", created)
	}
	var listed struct {
		Tenants []artemis.TenantStatus `json:"tenants"`
	}
	h.call("GET", "/v1/tenants", admin, nil, &listed)
	if len(listed.Tenants) != 4 {
		t.Fatalf("tenant list: %+v", listed.Tenants)
	}

	// The new tenant detects immediately; its token scopes the readout.
	if err := h.node.Inject(artemis.RouteObservation{
		VantagePoint: 64499, Prefix: "203.0.113.0/24", Path: []uint32{64499, 666},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var alerts struct {
		Alerts []artemis.Alert `json:"alerts"`
	}
	for {
		h.call("GET", "/v1/alerts", "initech-tok", nil, &alerts)
		if len(alerts.Alerts) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("initech alert never surfaced: %+v", alerts)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if alerts.Alerts[0].Tenant != "initech" || alerts.Alerts[0].Type != "exact-origin" {
		t.Fatalf("initech alert: %+v", alerts.Alerts[0])
	}
	// Another tenant's token sees nothing.
	h.call("GET", "/v1/alerts", "acme-tok", nil, &alerts)
	if len(alerts.Alerts) != 0 {
		t.Fatalf("acme sees another tenant's alerts: %+v", alerts.Alerts)
	}

	// Upstream-policy CRUD with a tenant token.
	var ups struct {
		Tenant    string              `json:"tenant"`
		Upstreams map[uint32][]uint32 `json:"upstreams"`
	}
	if code := h.call("PUT", "/v1/upstreams", "acme-tok", map[string]any{
		"upstreams": map[string][]uint32{"64500": {3356, 1299}},
	}, &ups); code != http.StatusOK {
		t.Fatalf("PUT /v1/upstreams: %d", code)
	}
	if ups.Tenant != "acme" || len(ups.Upstreams[64500]) != 2 {
		t.Fatalf("upstreams after PUT: %+v", ups)
	}
	h.call("GET", "/v1/upstreams", "acme-tok", nil, &ups)
	if len(ups.Upstreams[64500]) != 2 {
		t.Fatalf("upstreams after GET: %+v", ups)
	}
	var cleared struct {
		Upstreams map[uint32][]uint32 `json:"upstreams"`
	}
	if code := h.call("DELETE", "/v1/upstreams", "acme-tok", nil, &cleared); code != http.StatusOK || len(cleared.Upstreams) != 0 {
		t.Fatalf("DELETE /v1/upstreams: %d %+v", code, cleared)
	}

	// Tenant-scoped prefix CRUD.
	if code := h.call("POST", "/v1/prefixes", "acme-tok", map[string]any{"prefixes": []string{"192.0.2.0/25"}}, nil); code != http.StatusOK {
		t.Fatal("tenant prefix add failed")
	}

	// Remove a tenant over HTTP.
	if code := h.call("DELETE", "/v1/tenants", admin, map[string]string{"name": "globex"}, nil); code != http.StatusOK {
		t.Fatal("DELETE /v1/tenants failed")
	}
	if code := h.call("GET", "/v1/alerts?tenant=globex", admin, nil, nil); code != http.StatusNotFound {
		t.Fatal("removed tenant still resolves")
	}

	// Atomic config replace: retune acme, drop initech, keep hosting.
	next := securedTenantConfig()
	next.Tenants = []artemis.TenantSpec{
		{Name: "acme", Prefixes: []string{"192.0.2.0/24"}, Origins: []uint32{64500, 64510}, Token: "acme-tok"},
	}
	var replaced artemis.Config
	if code := h.call("POST", "/v1/config", admin, next, &replaced); code != http.StatusOK {
		t.Fatalf("POST /v1/config: %d", code)
	}
	if len(replaced.Tenants) != 1 || len(replaced.Tenants[0].Origins) != 2 {
		t.Fatalf("config after replace: %+v", replaced.Tenants)
	}
	// Invalid replace is rejected whole.
	bad := securedTenantConfig()
	bad.Tenants[0].Prefixes = nil
	if code := h.call("POST", "/v1/config", admin, bad, nil); code != http.StatusBadRequest {
		t.Fatal("invalid config replace accepted")
	}

	// Restart from the persisted store: the HTTP-made changes survive.
	persisted, err := artemis.LoadState(state)
	if err != nil {
		t.Fatal(err)
	}
	node2, err := artemis.New(persisted, artemis.WithLogf(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Drain()
	names := node2.TenantNames()
	if len(names) != 2 || names[0] != artemis.DefaultTenant || names[1] != "acme" {
		t.Fatalf("tenants after restart: %v", names)
	}
	st, err := node2.TenantStatus("acme")
	if err != nil || len(st.Origins) != 2 {
		t.Fatalf("acme after restart: %+v %v", st, err)
	}
	if !node2.Secured() {
		t.Fatal("tokens lost across restart")
	}
}
