package control_test

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/bmp"
	"artemis/internal/feeds/eventlog"
	"artemis/internal/prefix"
	"artemis/pkg/artemis"
	"artemis/pkg/artemis/control"
)

// sseFeed collects /v1/events/stream frames in the background.
type sseFeed struct {
	mu    sync.Mutex
	lines []string
}

func (s *sseFeed) add(l string) {
	s.mu.Lock()
	s.lines = append(s.lines, l)
	s.mu.Unlock()
}

// records parses every data frame received so far.
func (s *sseFeed) records(t *testing.T) []eventlog.Record {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []eventlog.Record
	for _, l := range s.lines {
		data, ok := strings.CutPrefix(l, "data: ")
		if !ok {
			continue
		}
		r, err := eventlog.ParseRecord([]byte(data))
		if err != nil {
			t.Fatalf("bad stream frame %q: %v", l, err)
		}
		out = append(out, r)
	}
	return out
}

func openFeed(t *testing.T, url string) *sseFeed {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	t.Cleanup(func() { resp.Body.Close() })
	f := &sseFeed{}
	go func() {
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			f.add(scanner.Text())
		}
	}()
	return f
}

// TestEventsStreamFirehose: GET /v1/events/stream serves the post-dedup
// feed event stream as canonical envelope lines, with per-subscription
// sequence numbers and tenant scoping — a tenant's stream carries only
// events matching its owned space, while the admin stream carries
// everything.
func TestEventsStreamFirehose(t *testing.T) {
	exp, err := bmp.NewExporter("127.0.0.1:0", "rtr-test", bgp.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	peer := bmp.PerPeerHeader{Addr: prefix.MustParseAddr("192.0.2.10"), AS: 65010, BGPID: 1}
	exp.PeerUp(&bmp.PeerUp{
		Peer:      peer,
		LocalAddr: prefix.MustParseAddr("192.0.2.1"), LocalPort: 179, RemotePort: 30000,
		SentOpen: bgp.NewOpen(64512, 90, prefix.MustParseAddr("192.0.2.1")),
		RecvOpen: bgp.NewOpen(65010, 90, prefix.MustParseAddr("192.0.2.99")),
	})

	cfg := &artemis.Config{
		Prefixes: []string{"10.0.0.0/23"},
		Origins:  []uint32{61000},
		Tenants: []artemis.TenantSpec{
			{Name: "globex", Prefixes: []string{"172.16.0.0/22"}, Origins: []uint32{62000}},
		},
		Sources: []artemis.SourceSpec{{Type: artemis.SourceBMP, Addr: exp.Addr()}},
	}
	node, err := artemis.New(cfg, artemis.WithLogf(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- node.Run(ctx) }()
	srv := control.NewServer(node)
	api := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		api.Close()
		srv.Shutdown(context.Background())
		cancel()
		<-runDone
	})

	if resp, err := http.Get(api.URL + "/v1/events/stream?tenant=nosuch"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: %d, want 404", resp.StatusCode)
	}

	all := openFeed(t, api.URL+"/v1/events/stream")
	scoped := openFeed(t, api.URL+"/v1/events/stream?tenant=globex")

	// Wait for the BMP session (and with it, both live subscriptions are
	// already registered — openFeed returned after the 200).
	waitStream(t, "bmp healthy", func() bool {
		h := node.Health()
		return len(h.Sources) == 1 && h.Sources[0].State == "healthy"
	})

	publish := func(path []bgp.ASN, pfx string) {
		u := &bgp.Update{
			Attrs: []bgp.PathAttr{
				&bgp.OriginAttr{Value: bgp.OriginIGP},
				bgp.NewASPath(path),
				&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
			},
			NLRI: []prefix.Prefix{prefix.MustParse(pfx)},
		}
		exp.Publish(&bmp.RouteMonitoring{Peer: peer, Update: u})
	}
	publish([]bgp.ASN{65010, 61000}, "10.0.0.0/24")   // default tenant's space
	publish([]bgp.ASN{65010, 62000}, "172.16.0.0/24") // globex's space

	waitStream(t, "admin stream carries both events", func() bool {
		return len(all.records(t)) >= 2
	})
	waitStream(t, "scoped stream carries its event", func() bool {
		return len(scoped.records(t)) >= 1
	})
	// Give a straggler frame a moment to prove it never arrives.
	time.Sleep(50 * time.Millisecond)

	got := all.records(t)
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("admin stream seq: %d, %d", got[0].Seq, got[1].Seq)
	}
	if got[0].Event.Prefix != prefix.MustParse("10.0.0.0/24") ||
		got[1].Event.Prefix != prefix.MustParse("172.16.0.0/24") {
		t.Fatalf("admin stream events: %+v", got)
	}
	if got[0].Event.Source != "bmp" || got[0].Event.Collector != "rtr-test" ||
		got[0].Event.VantagePoint != 65010 {
		t.Fatalf("envelope meta: %+v", got[0].Event)
	}
	sc := scoped.records(t)
	if len(sc) != 1 || sc[0].Seq != 1 || sc[0].Event.Prefix != prefix.MustParse("172.16.0.0/24") {
		t.Fatalf("scoped stream: %+v", sc)
	}
}

func waitStream(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
