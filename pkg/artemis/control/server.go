// Package control serves an artemis.Node's operator API over versioned
// HTTP: configuration introspection, live reconfiguration (owned-prefix
// and source CRUD), health, alert history, a server-sent-event stream of
// the node's typed events, and the Prometheus-style /metrics endpoint —
// all on one gracefully-shut-down server.
//
//	GET    /v1/config         current declarative config (JSON)
//	GET    /v1/prefixes       owned prefixes
//	POST   /v1/prefixes       {"prefixes": ["10.9.0.0/24"]} — hot-add
//	DELETE /v1/prefixes       {"prefixes": ["10.9.0.0/24"]} — hot-remove
//	GET    /v1/sources        supervised sources with health
//	POST   /v1/sources        SourceSpec JSON — hot-add, returns {"name"}
//	DELETE /v1/sources        {"name": "ris[0]"} — hot-remove
//	GET    /v1/health         overall + per-source health summary
//	GET    /v1/alerts         alert history
//	GET    /v1/mitigations    mitigation attempt history
//	GET    /v1/alerts/stream  SSE stream (?kinds=alert,mitigation,health)
//	GET    /metrics           Prometheus text exposition
package control

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"artemis/pkg/artemis"
)

// Server is the control plane over one node.
type Server struct {
	node *artemis.Node
	mux  *http.ServeMux
	http *http.Server

	// done ends live streams (SSE) so Shutdown's handler-drain completes.
	done     chan struct{}
	doneOnce sync.Once

	mu sync.Mutex
	ln net.Listener
}

// NewServer builds the control plane for node.
func NewServer(node *artemis.Node) *Server {
	s := &Server{node: node, mux: http.NewServeMux(), done: make(chan struct{})}
	s.mux.HandleFunc("GET /v1/config", s.getConfig)
	s.mux.HandleFunc("GET /v1/prefixes", s.getPrefixes)
	s.mux.HandleFunc("POST /v1/prefixes", s.postPrefixes)
	s.mux.HandleFunc("DELETE /v1/prefixes", s.deletePrefixes)
	s.mux.HandleFunc("GET /v1/sources", s.getSources)
	s.mux.HandleFunc("POST /v1/sources", s.postSources)
	s.mux.HandleFunc("DELETE /v1/sources", s.deleteSources)
	s.mux.HandleFunc("GET /v1/health", s.getHealth)
	s.mux.HandleFunc("GET /v1/alerts", s.getAlerts)
	s.mux.HandleFunc("GET /v1/mitigations", s.getMitigations)
	s.mux.HandleFunc("GET /v1/alerts/stream", s.streamEvents)
	s.mux.HandleFunc("GET /metrics", s.getMetrics)
	s.http = &http.Server{Handler: s.mux}
	return s
}

// Handler exposes the API for embedders that mount it on their own
// server (httptest, an existing mux). Streams served this way still end
// on Shutdown.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return s.http.Serve(ln)
}

// Addr reports the bound listen address, once serving.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops the server gracefully: live event streams end, in-flight
// requests complete, then the listener closes. Part of the daemon's
// SIGINT/SIGTERM drain path.
func (s *Server) Shutdown(ctx context.Context) error {
	s.doneOnce.Do(func() { close(s.done) })
	return s.http.Shutdown(ctx)
}

// --- handlers ---

func (s *Server) getConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.node.Config())
}

func (s *Server) getPrefixes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"prefixes": s.node.Config().Prefixes})
}

// prefixesBody is the POST/DELETE /v1/prefixes payload.
type prefixesBody struct {
	Prefixes []string `json:"prefixes"`
}

func (s *Server) postPrefixes(w http.ResponseWriter, r *http.Request) {
	var body prefixesBody
	if !readJSON(w, r, &body) {
		return
	}
	if len(body.Prefixes) == 0 {
		writeError(w, http.StatusBadRequest, "no prefixes given")
		return
	}
	if err := s.node.AddPrefixes(body.Prefixes...); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"prefixes": s.node.Config().Prefixes})
}

func (s *Server) deletePrefixes(w http.ResponseWriter, r *http.Request) {
	var body prefixesBody
	if !readJSON(w, r, &body) {
		return
	}
	if len(body.Prefixes) == 0 {
		writeError(w, http.StatusBadRequest, "no prefixes given")
		return
	}
	if err := s.node.RemovePrefixes(body.Prefixes...); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"prefixes": s.node.Config().Prefixes})
}

func (s *Server) getSources(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sources": s.node.Health().Sources})
}

func (s *Server) postSources(w http.ResponseWriter, r *http.Request) {
	var spec artemis.SourceSpec
	if !readJSON(w, r, &spec) {
		return
	}
	name, err := s.node.AddSource(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name})
}

func (s *Server) deleteSources(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Name string `json:"name"`
	}
	if !readJSON(w, r, &body) {
		return
	}
	if body.Name == "" {
		writeError(w, http.StatusBadRequest, "no source name given")
		return
	}
	if err := s.node.RemoveSource(body.Name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": body.Name})
}

func (s *Server) getHealth(w http.ResponseWriter, r *http.Request) {
	h := s.node.Health()
	status := http.StatusOK
	if h.Status == "critical" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) getAlerts(w http.ResponseWriter, r *http.Request) {
	alerts := s.node.Alerts()
	if alerts == nil {
		alerts = []artemis.Alert{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"alerts": alerts})
}

func (s *Server) getMitigations(w http.ResponseWriter, r *http.Request) {
	mits := s.node.Mitigations()
	if mits == nil {
		mits = []artemis.Mitigation{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"mitigations": mits})
}

func (s *Server) getMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.node.WriteMetrics(w)
}

// streamEvents serves the node's typed events as server-sent events:
// "event: <kind>" + "data: <json>" frames, with comment heartbeats to
// keep intermediaries from timing the stream out. ?kinds=alert,mitigation
// filters; default all.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	kinds, err := parseKinds(r.URL.Query().Get("kinds"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sub := s.node.Subscribe(kinds, 256)
	defer sub.Cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": artemis event stream\n\n")
	flusher.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return // node drained
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
			flusher.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}

func parseKinds(q string) (artemis.EventKind, error) {
	if q == "" {
		return artemis.KindAll, nil
	}
	var kinds artemis.EventKind
	for _, part := range strings.Split(q, ",") {
		switch strings.TrimSpace(part) {
		case "alert":
			kinds |= artemis.KindAlert
		case "mitigation":
			kinds |= artemis.KindMitigation
		case "health":
			kinds |= artemis.KindHealth
		default:
			return 0, fmt.Errorf("unknown event kind %q", part)
		}
	}
	return kinds, nil
}

// --- JSON helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}
