// Package control serves an artemis.Node's operator API over versioned
// HTTP: configuration introspection, live reconfiguration (tenant,
// owned-prefix, upstream-policy and source CRUD), health, alert history,
// a server-sent-event stream of the node's typed events, and the
// Prometheus-style /metrics endpoint — all on one gracefully-shut-down
// server.
//
//	GET    /v1/config         current declarative config (JSON)    [admin]
//	POST   /v1/config         atomic full-config replace           [admin]
//	GET    /v1/tenants        tenant statuses                      [admin]
//	POST   /v1/tenants        TenantSpec JSON — hot-add            [admin]
//	DELETE /v1/tenants        {"name": "acme"} — hot-remove        [admin]
//	GET    /v1/prefixes       owned prefixes           [tenant-scoped]
//	POST   /v1/prefixes       {"prefixes": [...]} — hot-add        [tenant-scoped]
//	DELETE /v1/prefixes       {"prefixes": [...]} — hot-remove     [tenant-scoped]
//	GET    /v1/upstreams      path-anomaly neighbor policy         [tenant-scoped]
//	PUT    /v1/upstreams      {"upstreams": {"64500": [3356]}}     [tenant-scoped]
//	DELETE /v1/upstreams      clear the policy                     [tenant-scoped]
//	GET    /v1/sources        supervised sources with health       [admin]
//	POST   /v1/sources        SourceSpec JSON — hot-add            [admin]
//	DELETE /v1/sources        {"name": "ris[0]"} — hot-remove      [admin]
//	GET    /v1/health         overall + per-source health summary  [admin]
//	GET    /v1/alerts         alert history                        [tenant-scoped]
//	GET    /v1/mitigations    mitigation attempt history           [tenant-scoped]
//	GET    /v1/alerts/stream  SSE stream (?kinds=..., ?tenant=...) [tenant-scoped]
//	GET    /v1/events/stream  SSE firehose of post-dedup feed events [tenant-scoped]
//	GET    /v1/lookup/{prefix} glass-style best-route lookup       [tenant-scoped]
//	GET    /v1/as/{asn}       AS name/locale + originated counts   [tenant-scoped]
//	GET    /metrics           Prometheus text exposition           [admin]
//
// # Authentication
//
// With no tokens configured the API is open (the single-operator
// back-compat mode). Once Control.AdminToken or any tenant Token is set,
// every request needs "Authorization: Bearer <token>": the admin token
// grants everything, a tenant token grants that tenant's [tenant-scoped]
// endpoints only. Tenant-scoped endpoints take ?tenant=<name> (admin
// default: the "default" tenant for CRUD, all tenants for read-outs); a
// tenant token is pinned to its own tenant and cannot name another.
// Failures are observable — counted in artemis_auth_failures_total and
// published as auth events — and return 401 (bad or missing token) or
// 403 (authenticated but out of scope).
package control

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"artemis/internal/feeds/eventlog"
	"artemis/pkg/artemis"
)

// Server is the control plane over one node.
type Server struct {
	node *artemis.Node
	mux  *http.ServeMux
	http *http.Server

	// done ends live streams (SSE) so Shutdown's handler-drain completes.
	done     chan struct{}
	doneOnce sync.Once

	// cache absorbs repeated glass lookups (lookup.go); its hit/miss
	// counters are appended to /metrics.
	cache *respCache

	mu sync.Mutex
	ln net.Listener
}

// authedHandler is a handler that runs with a resolved credential scope.
type authedHandler func(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope)

// NewServer builds the control plane for node.
func NewServer(node *artemis.Node) *Server {
	s := &Server{node: node, mux: http.NewServeMux(), done: make(chan struct{}), cache: newRespCache()}
	admin := s.admin
	scoped := s.scoped
	s.mux.HandleFunc("GET /v1/config", admin(s.getConfig))
	s.mux.HandleFunc("POST /v1/config", admin(s.postConfig))
	s.mux.HandleFunc("GET /v1/tenants", admin(s.getTenants))
	s.mux.HandleFunc("POST /v1/tenants", admin(s.postTenants))
	s.mux.HandleFunc("DELETE /v1/tenants", admin(s.deleteTenants))
	s.mux.HandleFunc("GET /v1/prefixes", scoped(s.getPrefixes))
	s.mux.HandleFunc("POST /v1/prefixes", scoped(s.postPrefixes))
	s.mux.HandleFunc("DELETE /v1/prefixes", scoped(s.deletePrefixes))
	s.mux.HandleFunc("GET /v1/upstreams", scoped(s.getUpstreams))
	s.mux.HandleFunc("PUT /v1/upstreams", scoped(s.putUpstreams))
	s.mux.HandleFunc("DELETE /v1/upstreams", scoped(s.deleteUpstreams))
	s.mux.HandleFunc("GET /v1/sources", admin(s.getSources))
	s.mux.HandleFunc("POST /v1/sources", admin(s.postSources))
	s.mux.HandleFunc("DELETE /v1/sources", admin(s.deleteSources))
	s.mux.HandleFunc("GET /v1/health", admin(s.getHealth))
	s.mux.HandleFunc("GET /v1/alerts", scoped(s.getAlerts))
	s.mux.HandleFunc("GET /v1/mitigations", scoped(s.getMitigations))
	s.mux.HandleFunc("GET /v1/alerts/stream", scoped(s.streamEvents))
	s.mux.HandleFunc("GET /v1/events/stream", scoped(s.streamFeed))
	s.mux.HandleFunc("GET /v1/lookup/{prefix...}", scoped(s.getLookup))
	s.mux.HandleFunc("GET /v1/as/{asn}", scoped(s.getAS))
	s.mux.HandleFunc("GET /metrics", admin(s.getMetrics))
	s.http = &http.Server{Handler: s.mux}
	return s
}

// authenticate resolves the request's bearer token, rejecting (401 +
// reported failure) when it does not resolve.
func (s *Server) authenticate(w http.ResponseWriter, r *http.Request) (artemis.AuthScope, bool) {
	token, reason := "", "missing-token"
	if h := r.Header.Get("Authorization"); h != "" {
		if t, ok := strings.CutPrefix(h, "Bearer "); ok {
			token, reason = t, "bad-token"
		}
	}
	scope, ok := s.node.Authenticate(token)
	if !ok {
		s.node.ReportAuthFailure(r.URL.Path, "", reason)
		writeError(w, http.StatusUnauthorized, "unauthorized")
		return artemis.AuthScope{}, false
	}
	return scope, true
}

// admin wraps a handler that requires the admin scope.
func (s *Server) admin(h authedHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		scope, ok := s.authenticate(w, r)
		if !ok {
			return
		}
		if !scope.Admin {
			s.node.ReportAuthFailure(r.URL.Path, scope.Tenant, "forbidden")
			writeError(w, http.StatusForbidden, "admin scope required")
			return
		}
		h(w, r, scope)
	}
}

// scoped wraps a tenant-scoped handler: admin or tenant tokens pass; the
// handler resolves which tenant the request targets via tenantParam.
func (s *Server) scoped(h authedHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		scope, ok := s.authenticate(w, r)
		if !ok {
			return
		}
		h(w, r, scope)
	}
}

// tenantParam resolves which tenant a tenant-scoped request targets:
// the ?tenant= query parameter, or the token's own tenant, or — for an
// admin with no parameter — fallback ("" means "all"/"default" per
// endpoint). A tenant token naming another tenant is rejected (403 +
// reported failure).
func (s *Server) tenantParam(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope, fallback string) (string, bool) {
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		if scope.Tenant != "" {
			return scope.Tenant, true
		}
		return fallback, true
	}
	if !scope.Allows(tenant) {
		s.node.ReportAuthFailure(r.URL.Path, tenant, "forbidden")
		writeError(w, http.StatusForbidden, "token not valid for tenant %q", tenant)
		return "", false
	}
	return tenant, true
}

// Handler exposes the API for embedders that mount it on their own
// server (httptest, an existing mux). Streams served this way still end
// on Shutdown.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return s.http.Serve(ln)
}

// Addr reports the bound listen address, once serving.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops the server gracefully: live event streams end, in-flight
// requests complete, then the listener closes. Part of the daemon's
// SIGINT/SIGTERM drain path.
func (s *Server) Shutdown(ctx context.Context) error {
	s.doneOnce.Do(func() { close(s.done) })
	return s.http.Shutdown(ctx)
}

// --- handlers ---

func (s *Server) getConfig(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	writeJSON(w, http.StatusOK, s.node.Config())
}

// postConfig atomically replaces the whole declarative config — the
// hosted deployment's tenant-store replace. Hot-tunable fields apply
// live; construction-time fields persist and apply on restart.
func (s *Server) postConfig(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	var cfg artemis.Config
	if !readJSON(w, r, &cfg) {
		return
	}
	if err := s.node.ReplaceConfig(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.node.Config())
}

func (s *Server) getTenants(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.node.Tenants()})
}

func (s *Server) postTenants(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	var spec artemis.TenantSpec
	if !readJSON(w, r, &spec) {
		return
	}
	if err := s.node.AddTenant(spec); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, _ := s.node.TenantStatus(spec.Name)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) deleteTenants(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	var body struct {
		Name string `json:"name"`
	}
	if !readJSON(w, r, &body) {
		return
	}
	if body.Name == "" {
		writeError(w, http.StatusBadRequest, "no tenant name given")
		return
	}
	if err := s.node.RemoveTenant(body.Name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": body.Name})
}

// scopePrefixes reads the named tenant's owned prefixes from the current
// config (the default tenant is the top-level list).
func (s *Server) scopePrefixes(tenant string) ([]string, bool) {
	cfg := s.node.Config()
	if tenant == artemis.DefaultTenant {
		return cfg.Prefixes, len(cfg.Prefixes) > 0
	}
	for _, t := range cfg.Tenants {
		if t.Name == tenant {
			return t.Prefixes, true
		}
	}
	return nil, false
}

func (s *Server) getPrefixes(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope) {
	tenant, ok := s.tenantParam(w, r, scope, artemis.DefaultTenant)
	if !ok {
		return
	}
	prefixes, found := s.scopePrefixes(tenant)
	if !found {
		writeError(w, http.StatusNotFound, "unknown tenant %q", tenant)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "prefixes": prefixes})
}

// prefixesBody is the POST/DELETE /v1/prefixes payload.
type prefixesBody struct {
	Prefixes []string `json:"prefixes"`
}

func (s *Server) postPrefixes(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope) {
	tenant, ok := s.tenantParam(w, r, scope, artemis.DefaultTenant)
	if !ok {
		return
	}
	var body prefixesBody
	if !readJSON(w, r, &body) {
		return
	}
	if len(body.Prefixes) == 0 {
		writeError(w, http.StatusBadRequest, "no prefixes given")
		return
	}
	if err := s.node.AddTenantPrefixes(tenant, body.Prefixes...); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prefixes, _ := s.scopePrefixes(tenant)
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "prefixes": prefixes})
}

func (s *Server) deletePrefixes(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope) {
	tenant, ok := s.tenantParam(w, r, scope, artemis.DefaultTenant)
	if !ok {
		return
	}
	var body prefixesBody
	if !readJSON(w, r, &body) {
		return
	}
	if len(body.Prefixes) == 0 {
		writeError(w, http.StatusBadRequest, "no prefixes given")
		return
	}
	if err := s.node.RemoveTenantPrefixes(tenant, body.Prefixes...); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prefixes, _ := s.scopePrefixes(tenant)
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "prefixes": prefixes})
}

// upstreamsBody is the PUT /v1/upstreams payload. JSON object keys are
// strings, so origin ASNs arrive as decimal strings.
type upstreamsBody struct {
	Upstreams map[uint32][]uint32 `json:"upstreams"`
}

func (s *Server) getUpstreams(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope) {
	tenant, ok := s.tenantParam(w, r, scope, artemis.DefaultTenant)
	if !ok {
		return
	}
	ups, err := s.node.Upstreams(tenant)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if ups == nil {
		ups = map[uint32][]uint32{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "upstreams": ups})
}

func (s *Server) putUpstreams(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope) {
	tenant, ok := s.tenantParam(w, r, scope, artemis.DefaultTenant)
	if !ok {
		return
	}
	var body upstreamsBody
	if !readJSON(w, r, &body) {
		return
	}
	if err := s.node.SetUpstreams(tenant, body.Upstreams); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ups, _ := s.node.Upstreams(tenant)
	if ups == nil {
		ups = map[uint32][]uint32{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "upstreams": ups})
}

func (s *Server) deleteUpstreams(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope) {
	tenant, ok := s.tenantParam(w, r, scope, artemis.DefaultTenant)
	if !ok {
		return
	}
	if err := s.node.SetUpstreams(tenant, nil); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "upstreams": map[uint32][]uint32{}})
}

func (s *Server) getSources(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	writeJSON(w, http.StatusOK, map[string]any{"sources": s.node.Health().Sources})
}

func (s *Server) postSources(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	var spec artemis.SourceSpec
	if !readJSON(w, r, &spec) {
		return
	}
	name, err := s.node.AddSource(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name})
}

func (s *Server) deleteSources(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	var body struct {
		Name string `json:"name"`
	}
	if !readJSON(w, r, &body) {
		return
	}
	if body.Name == "" {
		writeError(w, http.StatusBadRequest, "no source name given")
		return
	}
	if err := s.node.RemoveSource(body.Name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": body.Name})
}

func (s *Server) getHealth(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	h := s.node.Health()
	status := http.StatusOK
	if h.Status == "critical" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) getAlerts(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope) {
	tenant, ok := s.tenantParam(w, r, scope, "")
	if !ok {
		return
	}
	var alerts []artemis.Alert
	if tenant == "" {
		alerts = s.node.Alerts() // admin, no parameter: all tenants
	} else {
		var err error
		if alerts, err = s.node.TenantAlerts(tenant); err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
	}
	if alerts == nil {
		alerts = []artemis.Alert{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"alerts": alerts})
}

func (s *Server) getMitigations(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope) {
	tenant, ok := s.tenantParam(w, r, scope, "")
	if !ok {
		return
	}
	var mits []artemis.Mitigation
	if tenant == "" {
		mits = s.node.Mitigations()
	} else {
		var err error
		if mits, err = s.node.TenantMitigations(tenant); err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
	}
	if mits == nil {
		mits = []artemis.Mitigation{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"mitigations": mits})
}

func (s *Server) getMetrics(w http.ResponseWriter, r *http.Request, _ artemis.AuthScope) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.node.WriteMetrics(w)
	fmt.Fprintf(w, "artemis_lookup_cache_hits_total %d\n", s.cache.hits.Load())
	fmt.Fprintf(w, "artemis_lookup_cache_misses_total %d\n", s.cache.misses.Load())
}

// streamEvents serves the node's typed events as server-sent events:
// "event: <kind>" + "data: <json>" frames, with comment heartbeats to
// keep intermediaries from timing the stream out. ?kinds=alert,mitigation
// filters (default all); ?tenant= (or a tenant token) scopes the stream
// to one tenant's events behind its bounded per-tenant buffer.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	kinds, err := parseKinds(r.URL.Query().Get("kinds"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tenant, ok := s.tenantParam(w, r, scope, "")
	if !ok {
		return
	}
	var sub *artemis.Subscription
	if tenant == "" {
		sub = s.node.Subscribe(kinds, 256) // admin, no parameter: everything
	} else {
		if sub, err = s.node.SubscribeTenant(tenant, kinds, 256); err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
	}
	defer sub.Cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": artemis event stream\n\n")
	flusher.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return // node drained
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
			flusher.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}

// streamFeed serves the post-dedup feed event stream (the raw routing
// observations, before classification) as server-sent events. Each
// frame is "event: route" carrying one canonical envelope line —
// ["R", seq, time, type, data, meta], the same interchange form the
// event log records (docs/INTERCHANGE.md) — with seq assigned per
// subscription. ?tenant= (or a tenant token) scopes the stream to
// events matching that tenant's owned space; slow consumers shed
// events rather than backpressure ingest.
func (s *Server) streamFeed(w http.ResponseWriter, r *http.Request, scope artemis.AuthScope) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	tenant, ok := s.tenantParam(w, r, scope, "")
	if !ok {
		return
	}
	sub, err := s.node.SubscribeEvents(tenant, 256)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": artemis feed event stream\n\n")
	flusher.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	var seq uint64
	var buf []byte
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return // node drained
			}
			seq++
			buf = append(buf[:0], "event: route\ndata: "...)
			buf = eventlog.AppendRecord(buf, eventlog.Record{Seq: seq, Event: ev})
			buf = append(buf, '\n') // envelope ends with \n; SSE frames end with a blank line
			w.Write(buf)
			flusher.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}

func parseKinds(q string) (artemis.EventKind, error) {
	if q == "" {
		return artemis.KindAll, nil
	}
	var kinds artemis.EventKind
	for _, part := range strings.Split(q, ",") {
		switch strings.TrimSpace(part) {
		case "alert":
			kinds |= artemis.KindAlert
		case "mitigation":
			kinds |= artemis.KindMitigation
		case "health":
			kinds |= artemis.KindHealth
		case "limit":
			kinds |= artemis.KindLimit
		case "auth":
			kinds |= artemis.KindAuth
		default:
			return 0, fmt.Errorf("unknown event kind %q", part)
		}
	}
	return kinds, nil
}

// --- JSON helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}
