package artemis

import (
	"sync"
	"sync/atomic"

	"artemis/internal/core"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
)

// EventKind selects event categories for Subscribe; kinds OR together.
type EventKind uint8

const (
	// KindAlert: a hijack was detected.
	KindAlert EventKind = 1 << iota
	// KindMitigation: a mitigation attempt completed (or an accepted
	// announcement later failed downstream).
	KindMitigation
	// KindHealth: a monitoring source changed lifecycle state.
	KindHealth
	// KindLimit: a per-tenant isolation limit shed work — classification
	// quota drops or mitigation rate-limit drops. Drops are never silent:
	// each batch of them is both counted (/metrics) and published here.
	KindLimit
	// KindAuth: a control-plane request failed authentication or tried to
	// cross a tenant boundary. Counted and published, never just a 401.
	KindAuth

	// KindAll subscribes to everything.
	KindAll = KindAlert | KindMitigation | KindHealth | KindLimit | KindAuth
)

func (k EventKind) String() string {
	switch k {
	case KindAlert:
		return "alert"
	case KindMitigation:
		return "mitigation"
	case KindHealth:
		return "health"
	case KindLimit:
		return "limit"
	case KindAuth:
		return "auth"
	}
	return "mixed"
}

// Alert is one detected hijack incident, in embeddable (string-typed,
// JSON-ready) form.
type Alert struct {
	// Tenant is the config scope whose policy raised the alert ("default"
	// for the top-level prefixes).
	Tenant string `json:"tenant,omitempty"`
	// Type is the classification: "exact-origin", "sub-prefix", "squat"
	// or "path-anomaly".
	Type string `json:"type"`
	// Prefix is the offending announcement; Owned the protected prefix it
	// collides with.
	Prefix string `json:"prefix"`
	Owned  string `json:"owned"`
	// Origin is the offending AS (for path anomalies, the AS spliced next
	// to the legitimate origin).
	Origin uint32 `json:"origin"`
	// OriginName/OriginLocale name the offending AS when an AS-name
	// registry is configured (asnames:), so alerts read "AS666
	// (BADNET, XX)" instead of a bare number.
	OriginName   string `json:"origin_name,omitempty"`
	OriginLocale string `json:"origin_locale,omitempty"`
	// RPKI is the route-origin-validation verdict for the offending
	// (prefix, origin) pair — "invalid" or "unknown" — when an ROA table
	// is configured (rpki:). ROA-valid announcements never alert.
	RPKI string `json:"rpki,omitempty"`
	// Source/Collector/VantagePoint locate the evidence: which feed saw
	// the announcement from where.
	Source       string `json:"source"`
	Collector    string `json:"collector"`
	VantagePoint uint32 `json:"vantage_point"`
	// DetectedAt is the node-clock time of detection.
	DetectedAt Duration `json:"detected_at"`
}

// Mitigation is one mitigation attempt's outcome.
type Mitigation struct {
	Alert Alert `json:"alert"`
	// Prefixes are the de-aggregated announcements requested; Announced
	// the subset the controller accepted.
	Prefixes  []string `json:"prefixes"`
	Announced []string `json:"announced"`
	// Competitive marks same-prefix re-announcements that compete on path
	// length instead of winning longest-prefix match.
	Competitive bool     `json:"competitive"`
	TriggeredAt Duration `json:"triggered_at"`
	// Error is the controller failure that aborted (or later undid) the
	// attempt; empty on success.
	Error string `json:"error,omitempty"`
}

// SourceHealth is one monitoring-source lifecycle transition.
type SourceHealth struct {
	Source string `json:"source"`
	// From/To are lifecycle states: "connecting", "healthy", "degraded",
	// "dead".
	From string `json:"from"`
	To   string `json:"to"`
}

// LimitEvent reports work shed by a per-tenant isolation limit.
type LimitEvent struct {
	Tenant string `json:"tenant"`
	// Limit names the bound that fired: "classification-quota"
	// (TenantLimits.MaxEventsPerSec) or "mitigation-rate"
	// (TenantLimits.MitigationRatePerMin).
	Limit string `json:"limit"`
	// Count is how many classifications (or mitigations) were shed in
	// this report — quota drops are tallied per submitted batch.
	Count int64 `json:"count"`
}

// AuthFailure reports one rejected control-plane request.
type AuthFailure struct {
	// Path is the request path that was rejected.
	Path string `json:"path"`
	// Tenant is the tenant scope the request targeted, when one was
	// identifiable (cross-tenant rejections).
	Tenant string `json:"tenant,omitempty"`
	// Reason is "missing-token", "bad-token" or "forbidden".
	Reason string `json:"reason"`
}

// Event is one occurrence delivered through a Subscription; exactly one
// of Alert, Mitigation, SourceHealth, Limit and Auth is set, per Kind.
type Event struct {
	Kind EventKind `json:"-"`
	// Tenant scopes the event to one config scope; empty for node-global
	// events (source health, auth failures).
	Tenant       string        `json:"tenant,omitempty"`
	Alert        *Alert        `json:"alert,omitempty"`
	Mitigation   *Mitigation   `json:"mitigation,omitempty"`
	SourceHealth *SourceHealth `json:"source_health,omitempty"`
	Limit        *LimitEvent   `json:"limit,omitempty"`
	Auth         *AuthFailure  `json:"auth,omitempty"`
}

// Subscription is one subscriber's bounded event feed. Receive from C;
// Cancel when done. A subscriber that falls behind loses the oldest
// undelivered events (counted by Dropped) instead of stalling detection:
// publishers run on the detection sink and source goroutines and never
// block on subscribers.
type Subscription struct {
	// C delivers events. It is closed when the subscription is cancelled
	// or the node drains.
	C <-chan Event

	ch    chan Event
	kinds EventKind
	// tenant, when tenantOnly is set, restricts delivery to that tenant's
	// events plus node-global (tenant-less) ones — the tenant-scoped SSE
	// stream's isolation boundary.
	tenant     string
	tenantOnly bool
	dropped    atomic.Int64
	bus        *eventBus
	id         int
}

// Dropped reports how many events this subscriber lost to its buffer
// bound.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Cancel detaches the subscription and closes C. Idempotent.
func (s *Subscription) Cancel() { s.bus.cancel(s) }

// eventBus fans events out to subscribers.
type eventBus struct {
	mu     sync.Mutex
	subs   map[int]*Subscription
	nextID int
	closed bool
}

func newEventBus() *eventBus {
	return &eventBus{subs: make(map[int]*Subscription)}
}

func (b *eventBus) subscribe(kinds EventKind, buffer int) *Subscription {
	return b.subscribeTenant("", false, kinds, buffer)
}

func (b *eventBus) subscribeTenant(tenant string, tenantOnly bool, kinds EventKind, buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 64
	}
	if kinds == 0 {
		kinds = KindAll
	}
	sub := &Subscription{
		ch: make(chan Event, buffer), kinds: kinds,
		tenant: tenant, tenantOnly: tenantOnly, bus: b,
	}
	sub.C = sub.ch
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(sub.ch)
		return sub
	}
	sub.id = b.nextID
	b.nextID++
	b.subs[sub.id] = sub
	return sub
}

func (b *eventBus) cancel(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s.id]; ok {
		delete(b.subs, s.id)
		close(s.ch)
	}
}

// publish delivers to every matching subscriber without blocking: when a
// subscriber's buffer is full, the oldest undelivered event is evicted to
// make room (and counted), so slow consumers see the freshest tail.
func (b *eventBus) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, sub := range b.subs {
		if sub.kinds&ev.Kind == 0 {
			continue
		}
		if sub.tenantOnly && ev.Tenant != "" && ev.Tenant != sub.tenant {
			continue
		}
		for {
			select {
			case sub.ch <- ev:
			default:
				select {
				case <-sub.ch:
					sub.dropped.Add(1)
				default:
				}
				continue
			}
			break
		}
	}
}

// close ends every subscription.
func (b *eventBus) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		delete(b.subs, id)
		close(sub.ch)
	}
}

// --- conversions from internal types ---

func alertFromCore(a core.Alert) Alert {
	return Alert{
		Type:         a.Type.String(),
		Prefix:       a.Prefix.String(),
		Owned:        a.Owned.String(),
		Origin:       uint32(a.Origin),
		RPKI:         a.RPKI,
		Source:       a.Evidence.Source,
		Collector:    a.Evidence.Collector,
		VantagePoint: uint32(a.Evidence.VantagePoint),
		DetectedAt:   Duration(a.DetectedAt),
	}
}

func mitigationFromCore(r core.MitigationRecord) Mitigation {
	m := Mitigation{
		Alert:       alertFromCore(r.Alert),
		Prefixes:    prefixStrings(r.Prefixes),
		Announced:   prefixStrings(r.Announced),
		Competitive: r.Competitive,
		TriggeredAt: Duration(r.TriggeredAt),
	}
	if r.Err != nil {
		m.Error = r.Err.Error()
	}
	return m
}

func healthFromIngest(tr ingest.HealthTransition) SourceHealth {
	return SourceHealth{Source: tr.Name, From: tr.From.String(), To: tr.To.String()}
}

func prefixStrings(ps []prefix.Prefix) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}
