package artemis

import (
	"time"
)

// RouteInjector is the mitigation southbound for embedders that originate
// routes themselves (their own BGP speakers, an SDN controller SDK, a
// provider API) instead of the built-in REST controller client. Prefixes
// arrive in canonical text form ("10.0.0.0/24", "2001:db8::/48").
type RouteInjector interface {
	AnnounceRoute(prefix string) error
	WithdrawRoute(prefix string) error
}

// Option customizes New beyond what the declarative config expresses.
type Option func(*options)

type options struct {
	now    func() time.Duration
	logf   func(format string, args ...any)
	inject RouteInjector
}

// WithNow overrides the node's clock (timestamps on alerts, mitigation
// records and metrics). The default is wall time since New. Paced
// simulations pass their scaled clock.
func WithNow(now func() time.Duration) Option {
	return func(o *options) { o.now = now }
}

// WithLogf routes the node's operational log lines (alerts raised,
// sources added, drain progress). Default: the standard library logger.
// Pass a no-op to silence.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(o *options) { o.logf = logf }
}

// WithRouteInjector supplies a custom mitigation southbound. It takes
// precedence over Mitigation.Controller in the config.
func WithRouteInjector(inj RouteInjector) Option {
	return func(o *options) { o.inject = inj }
}
