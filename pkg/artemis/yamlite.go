package artemis

// yamlite is a deliberately small YAML-subset parser for the declarative
// config file. It exists so the embeddable package stays dependency-free
// while config errors still point at file:line. Supported grammar:
//
//   - mappings: "key: value" scalars and "key:" followed by an indented
//     block (two or more spaces deeper)
//   - sequences: "- value" items, or "- key: value" starting an inline
//     mapping whose further keys sit two columns past the dash
//   - inline sequences of scalars: "[a, b, c]"
//   - comments ("# ..." to end of line) and blank lines anywhere
//
// Anchors, multi-document streams, flow mappings, multi-line strings and
// tabs are not supported and fail with a positioned error.

import (
	"fmt"
	"strings"
)

type yamlKind uint8

const (
	yScalar yamlKind = iota
	yList
	yMap
)

func (k yamlKind) String() string {
	switch k {
	case yScalar:
		return "scalar"
	case yList:
		return "sequence"
	default:
		return "mapping"
	}
}

// yamlNode is one parsed value, tagged with the 1-based line it started
// on so decoding and validation errors can point at the source.
type yamlNode struct {
	line   int
	kind   yamlKind
	scalar string
	items  []*yamlNode          // yList
	keys   []string             // yMap, in file order
	vals   map[string]*yamlNode // yMap
}

func (n *yamlNode) child(key string) *yamlNode {
	if n == nil || n.kind != yMap {
		return nil
	}
	return n.vals[key]
}

// srcLine is one significant (non-blank, non-comment) input line.
type srcLine struct {
	indent int
	text   string
	line   int
}

type yamlParser struct {
	name  string
	lines []srcLine
	pos   int
}

// errAt builds a positioned error.
func (p *yamlParser) errAt(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.name, line, fmt.Sprintf(format, args...))
}

// parseYamlite parses data into a root node (an empty document yields an
// empty mapping). name labels error positions — usually the file path.
func parseYamlite(data []byte, name string) (*yamlNode, error) {
	p := &yamlParser{name: name}
	for i, raw := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, p.errAt(lineNo, "tab in indentation (use spaces)")
		}
		text := strings.TrimRight(stripComment(raw[indent:]), " \r")
		if text == "" {
			continue
		}
		p.lines = append(p.lines, srcLine{indent: indent, text: text, line: lineNo})
	}
	if len(p.lines) == 0 {
		return &yamlNode{kind: yMap, vals: map[string]*yamlNode{}, line: 1}, nil
	}
	if p.lines[0].indent != 0 {
		return nil, p.errAt(p.lines[0].line, "unexpected indentation at document start")
	}
	node, err := p.parseBlock(-1)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, p.errAt(p.lines[p.pos].line, "unexpected de-indented content")
	}
	return node, nil
}

// stripComment removes a trailing "# ..." comment: a '#' at the start of
// the content or preceded by a space, outside quotes — so both
// "ws://host#frag" style values and quoted values containing " #"
// survive.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			continue
		}
		switch {
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses one block: the run of lines indented deeper than
// parentIndent, all at the indentation of the block's first line.
func (p *yamlParser) parseBlock(parentIndent int) (*yamlNode, error) {
	first := p.lines[p.pos]
	if first.indent <= parentIndent {
		return nil, p.errAt(first.line, "expected indented block")
	}
	if first.text == "-" || strings.HasPrefix(first.text, "- ") {
		return p.parseList(first.indent)
	}
	if key, _, ok := splitKey(first.text); ok && key != "" {
		return p.parseMap(first.indent)
	}
	// Single-line scalar block.
	p.pos++
	return p.scalarNode(first.text, first.line)
}

func (p *yamlParser) parseList(indent int) (*yamlNode, error) {
	node := &yamlNode{kind: yList, line: p.lines[p.pos].line}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, p.errAt(ln.line, "unexpected indentation inside sequence")
		}
		if ln.text != "-" && !strings.HasPrefix(ln.text, "- ") {
			break
		}
		if ln.text == "-" {
			// Item body on the following indented lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, p.errAt(ln.line, "empty sequence item")
			}
			item, err := p.parseBlock(indent)
			if err != nil {
				return nil, err
			}
			node.items = append(node.items, item)
			continue
		}
		// "- content": rewrite the dash line as the first line of the item
		// block, two columns in (where its continuation lines sit).
		p.lines[p.pos] = srcLine{indent: indent + 2, text: ln.text[2:], line: ln.line}
		item, err := p.parseBlock(indent)
		if err != nil {
			return nil, err
		}
		node.items = append(node.items, item)
	}
	return node, nil
}

func (p *yamlParser) parseMap(indent int) (*yamlNode, error) {
	node := &yamlNode{kind: yMap, line: p.lines[p.pos].line, vals: map[string]*yamlNode{}}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, p.errAt(ln.line, "unexpected indentation")
		}
		if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
			break // a sibling sequence ends the mapping (caller will reject)
		}
		key, rest, ok := splitKey(ln.text)
		if !ok || key == "" {
			return nil, p.errAt(ln.line, "expected \"key: value\"")
		}
		if _, dup := node.vals[key]; dup {
			return nil, p.errAt(ln.line, "duplicate key %q", key)
		}
		var val *yamlNode
		var err error
		if rest == "" {
			// Block value on the following lines — or an empty scalar when
			// the next line is not indented deeper.
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				val, err = p.parseBlock(indent)
			} else {
				val = &yamlNode{kind: yScalar, scalar: "", line: ln.line}
			}
		} else {
			p.pos++
			val, err = p.scalarNode(rest, ln.line)
		}
		if err != nil {
			return nil, err
		}
		node.keys = append(node.keys, key)
		node.vals[key] = val
	}
	return node, nil
}

// scalarNode interprets one scalar value: an inline "[a, b]" sequence or
// a plain (possibly quoted) string.
func (p *yamlParser) scalarNode(text string, line int) (*yamlNode, error) {
	if strings.HasPrefix(text, "[") {
		if !strings.HasSuffix(text, "]") {
			return nil, p.errAt(line, "unterminated inline sequence")
		}
		node := &yamlNode{kind: yList, line: line}
		inner := strings.TrimSpace(text[1 : len(text)-1])
		if inner == "" {
			return node, nil
		}
		for _, part := range strings.Split(inner, ",") {
			node.items = append(node.items, &yamlNode{
				kind: yScalar, scalar: unquote(strings.TrimSpace(part)), line: line,
			})
		}
		return node, nil
	}
	if strings.HasPrefix(text, "{") {
		return nil, p.errAt(line, "flow mappings are not supported")
	}
	return &yamlNode{kind: yScalar, scalar: unquote(text), line: line}, nil
}

// splitKey splits "key: value" / "key:"; reports ok=false for lines
// without a key separator. The separator is the first ": " or a trailing
// ":", so URL values ("url: ws://h:1/ws") keep their colons.
func splitKey(text string) (key, rest string, ok bool) {
	for i := 0; i < len(text); i++ {
		if text[i] != ':' {
			continue
		}
		if i == len(text)-1 {
			return strings.TrimSpace(text[:i]), "", true
		}
		if text[i+1] == ' ' {
			return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+1:]), true
		}
		return "", "", false // "ws://..." style scalar, not a key
	}
	return "", "", false
}

// unquote strips one level of matched single or double quotes.
func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
