package artemis

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"artemis/internal/prefix"
)

// Duration is time.Duration with Go duration-string JSON/YAML encoding
// ("15s", "10m"), so the declarative config and the control plane's JSON
// speak the same dialect.
type Duration time.Duration

// Std returns the standard-library value.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(d.String())), nil
}

// UnmarshalJSON accepts a Go duration string.
func (d *Duration) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("duration must be a string like \"15s\"")
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Source transport types accepted in SourceSpec.Type.
const (
	SourceRIS       = "ris"       // RIS Live-style websocket stream
	SourceBGPmon    = "bgpmon"    // BGPmon-style XML TCP stream
	SourceMRT       = "mrt"       // MRT archive replay from a file
	SourcePeriscope = "periscope" // Periscope-style looking-glass REST polling
)

// SourceSpec declares one monitoring feed. Which fields apply depends on
// Type: URL for ris (ws://…) and periscope (http://…), Addr for bgpmon
// (host:port), Path for mrt; Interval and LGs tune periscope polling.
type SourceSpec struct {
	Type string `json:"type"`
	// Name labels the source in metrics, health and events. Defaults to
	// "type[N]".
	Name     string   `json:"name,omitempty"`
	URL      string   `json:"url,omitempty"`
	Addr     string   `json:"addr,omitempty"`
	Path     string   `json:"path,omitempty"`
	Interval Duration `json:"interval,omitempty"`
	LGs      []string `json:"lgs,omitempty"`
}

// MitigationConfig declares how alerts are mitigated.
type MitigationConfig struct {
	// Controller is the REST base URL of the route-injecting controller.
	// Empty (and no WithRouteInjector option) leaves mitigation manual.
	Controller string `json:"controller,omitempty"`
	// ConfigDelay models the controller's configuration latency
	// (default 15s, the paper's measurement; negative = no delay).
	ConfigDelay Duration `json:"config_delay,omitempty"`
	// QueueDepth bounds the async mitigation queue (default 64).
	QueueDepth int `json:"queue_depth,omitempty"`
	// MaxDeaggLen/MaxDeaggLen6 clamp de-aggregated announcements
	// (defaults 24 and 48).
	MaxDeaggLen  int `json:"max_deagg_len,omitempty"`
	MaxDeaggLen6 int `json:"max_deagg_len6,omitempty"`
	// Manual disables automatic alert→mitigation wiring even when a
	// controller or injector is configured.
	Manual bool `json:"manual,omitempty"`
}

// TuningConfig bounds the daemon's state and concurrency.
type TuningConfig struct {
	// Shards is the detection pipeline's worker count (default: GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// SourceQueue bounds each feed source's pending-batch queue (default 64).
	SourceQueue int `json:"source_queue,omitempty"`
	// DedupTTL is the cross-source dedup window (default 10m; negative
	// disables).
	DedupTTL Duration `json:"dedup_ttl,omitempty"`
	// AlertTTL is the incident dedup window: after it, a hijack still
	// live re-alerts (default 24h; negative dedups forever — unbounded
	// suppression, the virtual-time experiments' semantics).
	AlertTTL Duration `json:"alert_ttl,omitempty"`
	// AlertDedupMax caps the incident dedup set (default 65536).
	AlertDedupMax int `json:"alert_dedup_max,omitempty"`
}

// ControlConfig declares the HTTP control plane.
type ControlConfig struct {
	// Listen is the address the control plane (REST API + /metrics)
	// serves on, e.g. ":9130". Empty disables serving (the API is still
	// available via control.NewServer for embedders).
	Listen string `json:"listen,omitempty"`
}

// Config is the declarative description of an ARTEMIS instance: the
// operator's ground truth (owned prefixes, legitimate origins, neighbor
// policy), the monitoring sources, and the runtime tuning. It is what
// artemis.yaml deserializes into, what GET /v1/config serializes out of,
// and the argument to New.
type Config struct {
	// Prefixes is the owned address space, v4 and v6 freely mixed.
	Prefixes []string `json:"prefixes"`
	// Origins are the ASNs allowed to originate the owned prefixes.
	Origins []uint32 `json:"origins"`
	// Upstreams, when non-empty, enables path-anomaly detection: per
	// legitimate origin, the neighbor ASes allowed next to it in a path.
	Upstreams map[uint32][]uint32 `json:"upstreams,omitempty"`
	// Sources are the monitoring feeds to supervise.
	Sources []SourceSpec `json:"sources,omitempty"`

	Mitigation MitigationConfig `json:"mitigation,omitempty"`
	Tuning     TuningConfig     `json:"tuning,omitempty"`
	Control    ControlConfig    `json:"control,omitempty"`
}

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	next := *c
	next.Prefixes = append([]string(nil), c.Prefixes...)
	next.Origins = append([]uint32(nil), c.Origins...)
	if c.Upstreams != nil {
		next.Upstreams = make(map[uint32][]uint32, len(c.Upstreams))
		for k, v := range c.Upstreams {
			next.Upstreams[k] = append([]uint32(nil), v...)
		}
	}
	next.Sources = make([]SourceSpec, len(c.Sources))
	for i, s := range c.Sources {
		next.Sources[i] = s
		next.Sources[i].LGs = append([]string(nil), s.LGs...)
	}
	return &next
}

// Validate checks a programmatically built config. Configs loaded via
// LoadConfig/ParseConfig are already validated with line positions.
func (c *Config) Validate() error {
	if len(c.Prefixes) == 0 {
		return fmt.Errorf("artemis: no owned prefixes configured")
	}
	seen := map[prefix.Prefix]bool{}
	for _, s := range c.Prefixes {
		p, err := prefix.Parse(s)
		if err != nil {
			return fmt.Errorf("artemis: bad prefix %q: %v", s, err)
		}
		if seen[p] {
			return fmt.Errorf("artemis: duplicate prefix %q", s)
		}
		seen[p] = true
	}
	if len(c.Origins) == 0 {
		return fmt.Errorf("artemis: no legitimate origins configured")
	}
	names := map[string]bool{}
	for i := range c.Sources {
		if err := c.Sources[i].validate(); err != nil {
			return err
		}
		if n := c.Sources[i].Name; n != "" {
			if names[n] {
				return fmt.Errorf("artemis: duplicate source name %q", n)
			}
			names[n] = true
		}
	}
	return nil
}

func (s *SourceSpec) validate() error {
	switch s.Type {
	case SourceRIS, SourcePeriscope:
		if s.URL == "" {
			return fmt.Errorf("artemis: %s source needs url", s.Type)
		}
	case SourceBGPmon:
		if s.Addr == "" {
			return fmt.Errorf("artemis: bgpmon source needs addr")
		}
	case SourceMRT:
		if s.Path == "" {
			return fmt.Errorf("artemis: mrt source needs path")
		}
	case "":
		return fmt.Errorf("artemis: source missing type")
	default:
		return fmt.Errorf("artemis: unknown source type %q", s.Type)
	}
	return nil
}

// LoadConfig reads and parses a declarative config file. Errors point at
// file:line.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseConfig(data, path)
}

// ParseConfig parses config data; name labels error positions (usually
// the file path). Every syntactic and semantic error is positioned:
// unknown keys, malformed prefixes, bad durations, incomplete sources.
func ParseConfig(data []byte, name string) (*Config, error) {
	root, err := parseYamlite(data, name)
	if err != nil {
		return nil, err
	}
	d := &configDecoder{name: name}
	cfg := d.decode(root)
	if d.err != nil {
		return nil, d.err
	}
	return cfg, nil
}

// configDecoder walks the node tree, remembering the first error.
type configDecoder struct {
	name string
	err  error
}

func (d *configDecoder) fail(line int, format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%s:%d: %s", d.name, line, fmt.Sprintf(format, args...))
	}
}

// checkKeys rejects unknown keys so typos fail loudly, with the line.
func (d *configDecoder) checkKeys(n *yamlNode, allowed ...string) {
	for _, k := range n.keys {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			d.fail(n.vals[k].line, "unknown key %q", k)
		}
	}
}

func (d *configDecoder) decode(root *yamlNode) *Config {
	cfg := &Config{}
	if root.kind != yMap {
		d.fail(root.line, "config must be a mapping")
		return cfg
	}
	d.checkKeys(root, "prefixes", "origins", "upstreams", "sources", "mitigation", "tuning", "control")

	if n := root.child("prefixes"); n != nil {
		for _, item := range d.scalarList(n) {
			if _, err := prefix.Parse(item.scalar); err != nil {
				d.fail(item.line, "bad prefix %q: %v", item.scalar, err)
			}
			cfg.Prefixes = append(cfg.Prefixes, item.scalar)
		}
	} else {
		d.fail(root.line, "missing required key \"prefixes\"")
	}
	if n := root.child("origins"); n != nil {
		for _, item := range d.scalarList(n) {
			cfg.Origins = append(cfg.Origins, d.asASN(item))
		}
	} else {
		d.fail(root.line, "missing required key \"origins\"")
	}
	if n := root.child("upstreams"); n != nil {
		if n.kind != yMap {
			d.fail(n.line, "upstreams must map origin ASN to a list of neighbor ASNs")
		} else {
			cfg.Upstreams = make(map[uint32][]uint32, len(n.keys))
			for _, k := range n.keys {
				origin, err := strconv.ParseUint(k, 10, 32)
				if err != nil {
					d.fail(n.vals[k].line, "bad origin ASN %q", k)
					continue
				}
				var ups []uint32
				for _, item := range d.scalarList(n.vals[k]) {
					ups = append(ups, d.asASN(item))
				}
				cfg.Upstreams[uint32(origin)] = ups
			}
		}
	}
	if n := root.child("sources"); n != nil {
		if n.kind != yList {
			d.fail(n.line, "sources must be a sequence")
		} else {
			for _, item := range n.items {
				cfg.Sources = append(cfg.Sources, d.decodeSource(item))
			}
		}
	}
	if n := root.child("mitigation"); n != nil && d.isMap(n, "mitigation") {
		d.checkKeys(n, "controller", "config-delay", "queue-depth", "max-deagg-len", "max-deagg-len6", "manual")
		cfg.Mitigation.Controller = d.optScalar(n, "controller")
		cfg.Mitigation.ConfigDelay = d.optDuration(n, "config-delay")
		cfg.Mitigation.QueueDepth = d.optInt(n, "queue-depth")
		cfg.Mitigation.MaxDeaggLen = d.optInt(n, "max-deagg-len")
		cfg.Mitigation.MaxDeaggLen6 = d.optInt(n, "max-deagg-len6")
		cfg.Mitigation.Manual = d.optBool(n, "manual")
	}
	if n := root.child("tuning"); n != nil && d.isMap(n, "tuning") {
		d.checkKeys(n, "shards", "source-queue", "dedup-ttl", "alert-ttl", "alert-dedup-max")
		cfg.Tuning.Shards = d.optInt(n, "shards")
		cfg.Tuning.SourceQueue = d.optInt(n, "source-queue")
		cfg.Tuning.DedupTTL = d.optDuration(n, "dedup-ttl")
		cfg.Tuning.AlertTTL = d.optDuration(n, "alert-ttl")
		cfg.Tuning.AlertDedupMax = d.optInt(n, "alert-dedup-max")
	}
	if n := root.child("control"); n != nil && d.isMap(n, "control") {
		d.checkKeys(n, "listen")
		cfg.Control.Listen = d.optScalar(n, "listen")
	}

	// Cross-field validation that has no better position than the list
	// items themselves.
	if d.err == nil {
		seen := map[string]bool{}
		for _, item := range d.scalarList(root.child("prefixes")) {
			p, _ := prefix.Parse(item.scalar)
			key := p.String()
			if seen[key] {
				d.fail(item.line, "duplicate prefix %q", item.scalar)
			}
			seen[key] = true
		}
		names := map[string]bool{}
		if n := root.child("sources"); n != nil && n.kind == yList {
			for i, item := range n.items {
				name := cfg.Sources[i].Name
				if name == "" {
					continue
				}
				if names[name] {
					d.fail(item.line, "duplicate source name %q", name)
				}
				names[name] = true
			}
		}
	}
	return cfg
}

func (d *configDecoder) decodeSource(n *yamlNode) SourceSpec {
	spec := SourceSpec{}
	if n.kind != yMap {
		d.fail(n.line, "each source must be a mapping with a \"type\"")
		return spec
	}
	d.checkKeys(n, "type", "name", "url", "addr", "path", "interval", "lgs")
	spec.Type = d.optScalar(n, "type")
	spec.Name = d.optScalar(n, "name")
	spec.URL = d.optScalar(n, "url")
	spec.Addr = d.optScalar(n, "addr")
	spec.Path = d.optScalar(n, "path")
	spec.Interval = d.optDuration(n, "interval")
	if lg := n.child("lgs"); lg != nil {
		for _, item := range d.scalarList(lg) {
			spec.LGs = append(spec.LGs, item.scalar)
		}
	}
	if err := spec.validate(); err != nil {
		d.fail(n.line, "%v", err)
	}
	return spec
}

func (d *configDecoder) isMap(n *yamlNode, what string) bool {
	if n.kind != yMap {
		d.fail(n.line, "%s must be a mapping", what)
		return false
	}
	return true
}

// scalarList returns a node's items as scalars, accepting both block and
// inline sequences (and a bare scalar as a one-element list).
func (d *configDecoder) scalarList(n *yamlNode) []*yamlNode {
	if n == nil {
		return nil
	}
	switch n.kind {
	case yScalar:
		if n.scalar == "" {
			return nil
		}
		return []*yamlNode{n}
	case yList:
		out := make([]*yamlNode, 0, len(n.items))
		for _, item := range n.items {
			if item.kind != yScalar {
				d.fail(item.line, "expected a scalar list item")
				continue
			}
			out = append(out, item)
		}
		return out
	default:
		d.fail(n.line, "expected a sequence")
		return nil
	}
}

func (d *configDecoder) asASN(n *yamlNode) uint32 {
	v, err := strconv.ParseUint(n.scalar, 10, 32)
	if err != nil {
		d.fail(n.line, "bad ASN %q", n.scalar)
		return 0
	}
	return uint32(v)
}

func (d *configDecoder) optScalar(n *yamlNode, key string) string {
	c := n.child(key)
	if c == nil {
		return ""
	}
	if c.kind != yScalar {
		d.fail(c.line, "%s must be a scalar", key)
		return ""
	}
	return c.scalar
}

func (d *configDecoder) optInt(n *yamlNode, key string) int {
	c := n.child(key)
	if c == nil {
		return 0
	}
	v, err := strconv.Atoi(c.scalar)
	if err != nil || c.kind != yScalar {
		d.fail(c.line, "%s must be an integer", key)
		return 0
	}
	return v
}

func (d *configDecoder) optBool(n *yamlNode, key string) bool {
	c := n.child(key)
	if c == nil {
		return false
	}
	switch c.scalar {
	case "true":
		return true
	case "false":
		return false
	}
	d.fail(c.line, "%s must be true or false", key)
	return false
}

func (d *configDecoder) optDuration(n *yamlNode, key string) Duration {
	c := n.child(key)
	if c == nil {
		return 0
	}
	v, err := time.ParseDuration(c.scalar)
	if err != nil || c.kind != yScalar {
		d.fail(c.line, "%s must be a duration like \"15s\"", key)
		return 0
	}
	return Duration(v)
}
