package artemis

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"artemis/internal/prefix"
)

// Duration is time.Duration with Go duration-string JSON/YAML encoding
// ("15s", "10m"), so the declarative config and the control plane's JSON
// speak the same dialect.
type Duration time.Duration

// Std returns the standard-library value.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(d.String())), nil
}

// UnmarshalJSON accepts a Go duration string.
func (d *Duration) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("duration must be a string like \"15s\"")
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Source transport types accepted in SourceSpec.Type.
const (
	SourceRIS       = "ris"       // RIS Live-style websocket stream
	SourceBGPmon    = "bgpmon"    // BGPmon-style XML TCP stream
	SourceMRT       = "mrt"       // MRT archive replay from a file
	SourcePeriscope = "periscope" // Periscope-style looking-glass REST polling
	SourceBMP       = "bmp"       // BMP station session to a router (RFC 7854)
	SourceReplay    = "replay"    // eventlog archive replay (record/replay loop)
)

// SourceSpec declares one monitoring feed. Which fields apply depends on
// Type: URL for ris (ws://…) and periscope (http://…), Addr for bgpmon
// and bmp (host:port), Path for mrt and replay (for replay, a glob over
// rotated segments); Interval and LGs tune periscope polling, Speed the
// replay time compression.
type SourceSpec struct {
	Type string `json:"type"`
	// Name labels the source in metrics, health and events. Defaults to
	// "type[N]".
	Name     string   `json:"name,omitempty"`
	URL      string   `json:"url,omitempty"`
	Addr     string   `json:"addr,omitempty"`
	Path     string   `json:"path,omitempty"`
	Interval Duration `json:"interval,omitempty"`
	LGs      []string `json:"lgs,omitempty"`
	// Speed is the replay time-compression factor (replay sources only):
	// 1 = recorded cadence, 16 = sixteen times faster, 0 = as fast as
	// possible. Events keep their recorded clocks at any speed, so
	// detection behaves identically — only wall time shrinks.
	Speed float64 `json:"speed,omitempty"`
	// MaxEventsPerSec, when positive, rate-limits the source with a
	// token bucket: live (drop-policy) sources shed over-limit batches,
	// replay (blocking) sources are paced. The shed count is the
	// rate_shed_total metric.
	MaxEventsPerSec int `json:"max_events_per_sec,omitempty"`
}

// RecordConfig declares the event archive sink: every post-dedup event
// the pipeline ingests is appended to size/time-rotated eventlog
// segments (docs/INTERCHANGE.md), which replay sources re-run at any
// speed. The recorder is bounded and lossy by design — a slow disk
// drops archive batches (counted in artemis_record_dropped_total) but
// never stalls detection.
type RecordConfig struct {
	// Path is the segment path prefix: "captures/cap" writes
	// captures/cap-000001.evlog, -000002, … Empty disables recording.
	Path string `json:"path,omitempty"`
	// MaxFileSize rotates a segment once it exceeds this many bytes
	// (default 64 MiB).
	MaxFileSize int64 `json:"max_file_size,omitempty"`
	// MaxFileAge rotates a segment after this long regardless of size
	// (default: size-only rotation).
	MaxFileAge Duration `json:"max_file_age,omitempty"`
	// QueueDepth bounds the recorder's pending-batch queue (default 64).
	QueueDepth int `json:"queue_depth,omitempty"`
}

// MitigationConfig declares how alerts are mitigated.
type MitigationConfig struct {
	// Controller is the REST base URL of the route-injecting controller.
	// Empty (and no WithRouteInjector option) leaves mitigation manual.
	Controller string `json:"controller,omitempty"`
	// ConfigDelay models the controller's configuration latency
	// (default 15s, the paper's measurement; negative = no delay).
	ConfigDelay Duration `json:"config_delay,omitempty"`
	// QueueDepth bounds the async mitigation queue (default 64).
	QueueDepth int `json:"queue_depth,omitempty"`
	// MaxDeaggLen/MaxDeaggLen6 clamp de-aggregated announcements
	// (defaults 24 and 48).
	MaxDeaggLen  int `json:"max_deagg_len,omitempty"`
	MaxDeaggLen6 int `json:"max_deagg_len6,omitempty"`
	// Manual disables automatic alert→mitigation wiring even when a
	// controller or injector is configured.
	Manual bool `json:"manual,omitempty"`
}

// TuningConfig bounds the daemon's state and concurrency.
type TuningConfig struct {
	// Shards is the detection pipeline's worker count (default: GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// SourceQueue bounds each feed source's pending-batch queue (default 64).
	SourceQueue int `json:"source_queue,omitempty"`
	// DedupTTL is the cross-source dedup window (default 10m; negative
	// disables).
	DedupTTL Duration `json:"dedup_ttl,omitempty"`
	// AlertTTL is the incident dedup window: after it, a hijack still
	// live re-alerts (default 24h; negative dedups forever — unbounded
	// suppression, the virtual-time experiments' semantics). Hot-tunable:
	// POST /v1/config retunes the live dedup sets without a restart.
	AlertTTL Duration `json:"alert_ttl,omitempty"`
	// AlertDedupMax caps the incident dedup set (default 65536). Hot-tunable.
	AlertDedupMax int `json:"alert_dedup_max,omitempty"`
	// MaxMitigationRetries bounds automatic re-attempts after a southbound
	// mitigation failure (default 5). Hot-tunable: the bound is read from
	// the active snapshot on every failure, so retuning applies to
	// incidents already in the retry loop.
	MaxMitigationRetries int `json:"max_mitigation_retries,omitempty"`
}

// RIBConfig declares the node's route-intelligence table: a full
// longest-prefix-match view of what the feeds observe, behind the
// /v1/lookup and /v1/as glass endpoints and the artemis_rib_* metrics.
type RIBConfig struct {
	// Enabled turns the table on. Live feed events are folded into it as
	// they arrive (announce/withdraw movement is counted per family and
	// per mask length).
	Enabled bool `json:"enabled,omitempty"`
	// Path, when set, bootstraps the table from an MRT TABLE_DUMP_V2
	// snapshot (a RIB dump) before sources start, so lookups answer from
	// a full table instead of only post-start churn. Implies Enabled.
	Path string `json:"path,omitempty"`
}

// RPKIConfig declares the ROA source for route-origin validation
// (RFC 6811). With a table loaded, ROA-valid announcements of owned
// space are fast-rejected in the classifier and origin alerts carry an
// "invalid"/"unknown" verdict as evidence.
type RPKIConfig struct {
	// Path loads a JSON ROA export (routinator/rpki-client/RIPE format)
	// from disk.
	Path string `json:"path,omitempty"`
	// URL fetches the export from a REST endpoint (e.g. a local
	// routinator's /json) instead. Exactly one of Path and URL may be set.
	URL string `json:"url,omitempty"`
	// Refresh re-fetches the URL periodically and swaps the new table
	// into every tenant's config at a pipeline barrier (URL sources only;
	// 0 = fetch once at startup).
	Refresh Duration `json:"refresh,omitempty"`
}

// ASNamesConfig declares the AS-name registry used to enrich alerts and
// lookup responses with the announcing network's name and locale.
type ASNamesConfig struct {
	// Path is a CSV of "asn,name[,locale]" rows ('#' comments allowed;
	// the ASN accepts an optional "AS" prefix).
	Path string `json:"path,omitempty"`
}

// ControlConfig declares the HTTP control plane.
type ControlConfig struct {
	// Listen is the address the control plane (REST API + /metrics)
	// serves on, e.g. ":9130". Empty disables serving (the API is still
	// available via control.NewServer for embedders).
	Listen string `json:"listen,omitempty"`
	// AdminToken, when set, gates the control plane: admin endpoints
	// (tenant CRUD, sources, full config) require this bearer token, and
	// tenant endpoints require it or the tenant's own token. When neither
	// an admin token nor any tenant token is configured the control plane
	// is open (the single-operator deployment).
	AdminToken string `json:"admin_token,omitempty"`
	// StateFile, when set, persists the declarative config (tenants
	// included) as JSON after every successful mutation — atomic
	// write-to-temp + rename — so hot tenant/prefix/source changes
	// survive a restart. The daemon prefers the state file over the
	// original config file when both exist.
	StateFile string `json:"state_file,omitempty"`
}

// TenantLimits bounds one tenant's share of a hosted node, isolating
// noisy tenants from the rest of the shared pipeline.
type TenantLimits struct {
	// MaxEventsPerSec caps classification work per tenant (an event-time
	// token bucket; 0 = unlimited). Dropped classifications are counted
	// and surfaced as KindLimit events, never silently discarded.
	MaxEventsPerSec int `json:"max_events_per_sec,omitempty"`
	// MitigationRatePerMin caps automatic mitigations per minute
	// (0 = unlimited). Rate-limited alerts stay visible as alerts and in
	// KindLimit events; operators can still mitigate manually.
	MitigationRatePerMin int `json:"mitigation_rate_per_min,omitempty"`
	// StreamBuffer caps the tenant's per-subscription event buffer
	// (0 = default 64). A tenant subscriber that falls behind loses its
	// oldest events instead of growing shared memory.
	StreamBuffer int `json:"stream_buffer,omitempty"`
}

// TenantSpec declares one tenant of a hosted (multi-tenant) node: a
// named config scope — owned prefixes, legitimate origins, neighbor
// policy — classified on the shared pipeline under its own policy.
// Tenants may own overlapping or even identical prefixes; a matching
// announcement is evaluated once per owning tenant.
type TenantSpec struct {
	// Name identifies the tenant in alerts, events, metrics and the
	// control plane. Required, unique, and not "default" (reserved for
	// the implicit tenant formed by the top-level prefixes/origins).
	Name string `json:"name"`
	// Prefixes is the tenant's owned address space, v4 and v6 mixed.
	Prefixes []string `json:"prefixes"`
	// Origins are the ASNs allowed to originate the tenant's prefixes.
	Origins []uint32 `json:"origins"`
	// Upstreams enables per-tenant path-anomaly detection (per origin,
	// the neighbor ASes allowed next to it in a path).
	Upstreams map[uint32][]uint32 `json:"upstreams,omitempty"`
	// Token is the tenant's bearer token for the control plane. Empty
	// means the tenant is reachable only with the admin token.
	Token string `json:"token,omitempty"`
	// Limits bound the tenant's share of the shared pipeline.
	Limits TenantLimits `json:"limits,omitempty"`
}

// Config is the declarative description of an ARTEMIS instance: the
// operator's ground truth (owned prefixes, legitimate origins, neighbor
// policy), the monitoring sources, and the runtime tuning. It is what
// artemis.yaml deserializes into, what GET /v1/config serializes out of,
// and the argument to New.
type Config struct {
	// Prefixes is the owned address space, v4 and v6 freely mixed.
	Prefixes []string `json:"prefixes"`
	// Origins are the ASNs allowed to originate the owned prefixes.
	Origins []uint32 `json:"origins"`
	// Upstreams, when non-empty, enables path-anomaly detection: per
	// legitimate origin, the neighbor ASes allowed next to it in a path.
	Upstreams map[uint32][]uint32 `json:"upstreams,omitempty"`
	// Tenants declares additional config scopes for hosted (multi-tenant)
	// deployments: one shared pipeline and feed union, per-tenant policy.
	// The top-level Prefixes/Origins/Upstreams, when present, form the
	// implicit "default" tenant; a config may also be tenants-only.
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// Sources are the monitoring feeds to supervise. They are shared:
	// every tenant's detection is fed from the same supervised union.
	Sources []SourceSpec `json:"sources,omitempty"`

	Mitigation MitigationConfig `json:"mitigation,omitempty"`
	Record     RecordConfig     `json:"record,omitempty"`
	Tuning     TuningConfig     `json:"tuning,omitempty"`
	Control    ControlConfig    `json:"control,omitempty"`
	RIB        RIBConfig        `json:"rib,omitzero"`
	RPKI       RPKIConfig       `json:"rpki,omitzero"`
	ASNames    ASNamesConfig    `json:"asnames,omitzero"`
}

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	next := *c
	next.Prefixes = append([]string(nil), c.Prefixes...)
	next.Origins = append([]uint32(nil), c.Origins...)
	next.Upstreams = cloneUpstreams(c.Upstreams)
	if c.Tenants != nil {
		next.Tenants = make([]TenantSpec, len(c.Tenants))
		for i, t := range c.Tenants {
			next.Tenants[i] = t.Clone()
		}
	}
	next.Sources = make([]SourceSpec, len(c.Sources))
	for i, s := range c.Sources {
		next.Sources[i] = s
		next.Sources[i].LGs = append([]string(nil), s.LGs...)
	}
	return &next
}

// Clone returns a deep copy of the tenant spec.
func (t TenantSpec) Clone() TenantSpec {
	t.Prefixes = append([]string(nil), t.Prefixes...)
	t.Origins = append([]uint32(nil), t.Origins...)
	t.Upstreams = cloneUpstreams(t.Upstreams)
	return t
}

func cloneUpstreams(u map[uint32][]uint32) map[uint32][]uint32 {
	if u == nil {
		return nil
	}
	out := make(map[uint32][]uint32, len(u))
	for k, v := range u {
		out[k] = append([]uint32(nil), v...)
	}
	return out
}

// DefaultTenant names the implicit tenant formed by a config's top-level
// Prefixes/Origins/Upstreams — the single-operator deployment, and the
// scope un-scoped control-plane calls act on.
const DefaultTenant = "default"

// Validate checks a programmatically built config. Configs loaded via
// LoadConfig/ParseConfig are already validated with line positions.
func (c *Config) Validate() error {
	if len(c.Prefixes) == 0 && len(c.Tenants) == 0 {
		return fmt.Errorf("artemis: no owned prefixes or tenants configured")
	}
	if len(c.Prefixes) > 0 {
		if err := validateScope(c.Prefixes, c.Origins); err != nil {
			return err
		}
	}
	tnames := map[string]bool{}
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if err := t.validate(); err != nil {
			return err
		}
		if tnames[t.Name] {
			return fmt.Errorf("artemis: duplicate tenant name %q", t.Name)
		}
		tnames[t.Name] = true
	}
	names := map[string]bool{}
	for i := range c.Sources {
		if err := c.Sources[i].validate(); err != nil {
			return err
		}
		if n := c.Sources[i].Name; n != "" {
			if names[n] {
				return fmt.Errorf("artemis: duplicate source name %q", n)
			}
			names[n] = true
		}
	}
	if c.RPKI.Path != "" && c.RPKI.URL != "" {
		return fmt.Errorf("artemis: rpki needs path or url, not both")
	}
	if c.RPKI.Refresh != 0 && c.RPKI.URL == "" {
		return fmt.Errorf("artemis: rpki refresh needs a url source")
	}
	if c.RPKI.Refresh < 0 {
		return fmt.Errorf("artemis: negative rpki refresh")
	}
	return nil
}

// validateScope checks one tenant scope's prefix/origin lists.
func validateScope(prefixes []string, origins []uint32) error {
	seen := map[prefix.Prefix]bool{}
	for _, s := range prefixes {
		p, err := prefix.Parse(s)
		if err != nil {
			return fmt.Errorf("artemis: bad prefix %q: %v", s, err)
		}
		if seen[p] {
			return fmt.Errorf("artemis: duplicate prefix %q", s)
		}
		seen[p] = true
	}
	if len(origins) == 0 {
		return fmt.Errorf("artemis: no legitimate origins configured")
	}
	return nil
}

func (t *TenantSpec) validate() error {
	if t.Name == "" {
		return fmt.Errorf("artemis: tenant missing name")
	}
	if t.Name == DefaultTenant {
		return fmt.Errorf("artemis: tenant name %q is reserved for the top-level prefixes", DefaultTenant)
	}
	if len(t.Prefixes) == 0 {
		return fmt.Errorf("artemis: tenant %q has no prefixes", t.Name)
	}
	if err := validateScope(t.Prefixes, t.Origins); err != nil {
		return fmt.Errorf("%v (tenant %q)", err, t.Name)
	}
	if t.Limits.MaxEventsPerSec < 0 || t.Limits.MitigationRatePerMin < 0 || t.Limits.StreamBuffer < 0 {
		return fmt.Errorf("artemis: tenant %q has negative limits", t.Name)
	}
	return nil
}

func (s *SourceSpec) validate() error {
	switch s.Type {
	case SourceRIS, SourcePeriscope:
		if s.URL == "" {
			return fmt.Errorf("artemis: %s source needs url", s.Type)
		}
	case SourceBGPmon:
		if s.Addr == "" {
			return fmt.Errorf("artemis: bgpmon source needs addr")
		}
	case SourceMRT:
		if s.Path == "" {
			return fmt.Errorf("artemis: mrt source needs path")
		}
	case SourceBMP:
		if s.Addr == "" {
			return fmt.Errorf("artemis: bmp source needs addr")
		}
	case SourceReplay:
		if s.Path == "" {
			return fmt.Errorf("artemis: replay source needs path")
		}
	case "":
		return fmt.Errorf("artemis: source missing type")
	default:
		return fmt.Errorf("artemis: unknown source type %q", s.Type)
	}
	if s.Speed < 0 {
		return fmt.Errorf("artemis: source speed must be >= 0")
	}
	if s.Speed != 0 && s.Type != SourceReplay {
		return fmt.Errorf("artemis: speed only applies to replay sources")
	}
	if s.MaxEventsPerSec < 0 {
		return fmt.Errorf("artemis: max_events_per_sec must be >= 0")
	}
	return nil
}

// LoadConfig reads and parses a declarative config file. Errors point at
// file:line.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseConfig(data, path)
}

// ParseConfig parses config data; name labels error positions (usually
// the file path). Every syntactic and semantic error is positioned:
// unknown keys, malformed prefixes, bad durations, incomplete sources.
func ParseConfig(data []byte, name string) (*Config, error) {
	root, err := parseYamlite(data, name)
	if err != nil {
		return nil, err
	}
	d := &configDecoder{name: name}
	cfg := d.decode(root)
	if d.err != nil {
		return nil, d.err
	}
	return cfg, nil
}

// configDecoder walks the node tree, remembering the first error.
type configDecoder struct {
	name string
	err  error
}

func (d *configDecoder) fail(line int, format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%s:%d: %s", d.name, line, fmt.Sprintf(format, args...))
	}
}

// checkKeys rejects unknown keys so typos fail loudly, with the line.
func (d *configDecoder) checkKeys(n *yamlNode, allowed ...string) {
	for _, k := range n.keys {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			d.fail(n.vals[k].line, "unknown key %q", k)
		}
	}
}

func (d *configDecoder) decode(root *yamlNode) *Config {
	cfg := &Config{}
	if root.kind != yMap {
		d.fail(root.line, "config must be a mapping")
		return cfg
	}
	d.checkKeys(root, "prefixes", "origins", "upstreams", "tenants", "sources", "mitigation", "record", "tuning", "control", "rib", "rpki", "asnames")

	if n := root.child("prefixes"); n != nil {
		for _, item := range d.scalarList(n) {
			if _, err := prefix.Parse(item.scalar); err != nil {
				d.fail(item.line, "bad prefix %q: %v", item.scalar, err)
			}
			cfg.Prefixes = append(cfg.Prefixes, item.scalar)
		}
	} else if root.child("tenants") == nil {
		d.fail(root.line, "missing required key \"prefixes\" (or \"tenants\")")
	}
	if n := root.child("origins"); n != nil {
		for _, item := range d.scalarList(n) {
			cfg.Origins = append(cfg.Origins, d.asASN(item))
		}
	} else if root.child("prefixes") != nil {
		d.fail(root.line, "missing required key \"origins\"")
	}
	cfg.Upstreams = d.decodeUpstreams(root.child("upstreams"))
	if n := root.child("tenants"); n != nil {
		if n.kind != yList {
			d.fail(n.line, "tenants must be a sequence")
		} else {
			for _, item := range n.items {
				cfg.Tenants = append(cfg.Tenants, d.decodeTenant(item))
			}
		}
	}
	if n := root.child("sources"); n != nil {
		if n.kind != yList {
			d.fail(n.line, "sources must be a sequence")
		} else {
			for _, item := range n.items {
				cfg.Sources = append(cfg.Sources, d.decodeSource(item))
			}
		}
	}
	if n := root.child("mitigation"); n != nil && d.isMap(n, "mitigation") {
		d.checkKeys(n, "controller", "config-delay", "queue-depth", "max-deagg-len", "max-deagg-len6", "manual")
		cfg.Mitigation.Controller = d.optScalar(n, "controller")
		cfg.Mitigation.ConfigDelay = d.optDuration(n, "config-delay")
		cfg.Mitigation.QueueDepth = d.optInt(n, "queue-depth")
		cfg.Mitigation.MaxDeaggLen = d.optInt(n, "max-deagg-len")
		cfg.Mitigation.MaxDeaggLen6 = d.optInt(n, "max-deagg-len6")
		cfg.Mitigation.Manual = d.optBool(n, "manual")
	}
	if n := root.child("record"); n != nil && d.isMap(n, "record") {
		d.checkKeys(n, "path", "max-file-size", "max-file-age", "queue-depth")
		cfg.Record.Path = d.optScalar(n, "path")
		cfg.Record.MaxFileSize = int64(d.optInt(n, "max-file-size"))
		cfg.Record.MaxFileAge = d.optDuration(n, "max-file-age")
		cfg.Record.QueueDepth = d.optInt(n, "queue-depth")
	}
	if n := root.child("tuning"); n != nil && d.isMap(n, "tuning") {
		d.checkKeys(n, "shards", "source-queue", "dedup-ttl", "alert-ttl", "alert-dedup-max", "max-mitigation-retries")
		cfg.Tuning.Shards = d.optInt(n, "shards")
		cfg.Tuning.SourceQueue = d.optInt(n, "source-queue")
		cfg.Tuning.DedupTTL = d.optDuration(n, "dedup-ttl")
		cfg.Tuning.AlertTTL = d.optDuration(n, "alert-ttl")
		cfg.Tuning.AlertDedupMax = d.optInt(n, "alert-dedup-max")
		cfg.Tuning.MaxMitigationRetries = d.optInt(n, "max-mitigation-retries")
	}
	if n := root.child("control"); n != nil && d.isMap(n, "control") {
		d.checkKeys(n, "listen", "admin-token", "state-file")
		cfg.Control.Listen = d.optScalar(n, "listen")
		cfg.Control.AdminToken = d.optScalar(n, "admin-token")
		cfg.Control.StateFile = d.optScalar(n, "state-file")
	}
	if n := root.child("rib"); n != nil && d.isMap(n, "rib") {
		d.checkKeys(n, "enabled", "path")
		cfg.RIB.Enabled = d.optBool(n, "enabled")
		cfg.RIB.Path = d.optScalar(n, "path")
		if cfg.RIB.Path != "" {
			cfg.RIB.Enabled = true
		}
	}
	if n := root.child("rpki"); n != nil && d.isMap(n, "rpki") {
		d.checkKeys(n, "path", "url", "refresh")
		cfg.RPKI.Path = d.optScalar(n, "path")
		cfg.RPKI.URL = d.optScalar(n, "url")
		cfg.RPKI.Refresh = d.optDuration(n, "refresh")
		if cfg.RPKI.Path != "" && cfg.RPKI.URL != "" {
			d.fail(n.line, "rpki needs path or url, not both")
		}
		if cfg.RPKI.Refresh != 0 && cfg.RPKI.URL == "" {
			d.fail(n.line, "rpki refresh needs a url source")
		}
	}
	if n := root.child("asnames"); n != nil && d.isMap(n, "asnames") {
		d.checkKeys(n, "path")
		cfg.ASNames.Path = d.optScalar(n, "path")
	}

	// Cross-field validation that has no better position than the list
	// items themselves.
	if d.err == nil {
		seen := map[string]bool{}
		for _, item := range d.scalarList(root.child("prefixes")) {
			p, _ := prefix.Parse(item.scalar)
			key := p.String()
			if seen[key] {
				d.fail(item.line, "duplicate prefix %q", item.scalar)
			}
			seen[key] = true
		}
		if len(cfg.Prefixes) > 0 && len(cfg.Origins) == 0 {
			d.fail(root.line, "missing required key \"origins\"")
		}
		tnames := map[string]bool{}
		if n := root.child("tenants"); n != nil && n.kind == yList {
			for i, item := range n.items {
				t := &cfg.Tenants[i]
				if err := t.validate(); err != nil {
					d.fail(item.line, "%v", err)
				}
				if tnames[t.Name] {
					d.fail(item.line, "duplicate tenant name %q", t.Name)
				}
				tnames[t.Name] = true
			}
		}
		names := map[string]bool{}
		if n := root.child("sources"); n != nil && n.kind == yList {
			for i, item := range n.items {
				name := cfg.Sources[i].Name
				if name == "" {
					continue
				}
				if names[name] {
					d.fail(item.line, "duplicate source name %q", name)
				}
				names[name] = true
			}
		}
	}
	return cfg
}

// decodeUpstreams decodes an origin→neighbors mapping (nil node → nil map).
func (d *configDecoder) decodeUpstreams(n *yamlNode) map[uint32][]uint32 {
	if n == nil {
		return nil
	}
	if n.kind != yMap {
		d.fail(n.line, "upstreams must map origin ASN to a list of neighbor ASNs")
		return nil
	}
	out := make(map[uint32][]uint32, len(n.keys))
	for _, k := range n.keys {
		origin, err := strconv.ParseUint(k, 10, 32)
		if err != nil {
			d.fail(n.vals[k].line, "bad origin ASN %q", k)
			continue
		}
		var ups []uint32
		for _, item := range d.scalarList(n.vals[k]) {
			ups = append(ups, d.asASN(item))
		}
		out[uint32(origin)] = ups
	}
	return out
}

// decodeTenant decodes one tenants: list item.
func (d *configDecoder) decodeTenant(n *yamlNode) TenantSpec {
	spec := TenantSpec{}
	if n.kind != yMap {
		d.fail(n.line, "each tenant must be a mapping with a \"name\"")
		return spec
	}
	d.checkKeys(n, "name", "prefixes", "origins", "upstreams", "token", "limits")
	spec.Name = d.optScalar(n, "name")
	for _, item := range d.scalarList(n.child("prefixes")) {
		if _, err := prefix.Parse(item.scalar); err != nil {
			d.fail(item.line, "bad prefix %q: %v", item.scalar, err)
		}
		spec.Prefixes = append(spec.Prefixes, item.scalar)
	}
	for _, item := range d.scalarList(n.child("origins")) {
		spec.Origins = append(spec.Origins, d.asASN(item))
	}
	spec.Upstreams = d.decodeUpstreams(n.child("upstreams"))
	spec.Token = d.optScalar(n, "token")
	if l := n.child("limits"); l != nil && d.isMap(l, "limits") {
		d.checkKeys(l, "max-events-per-sec", "mitigation-rate-per-min", "stream-buffer")
		spec.Limits.MaxEventsPerSec = d.optInt(l, "max-events-per-sec")
		spec.Limits.MitigationRatePerMin = d.optInt(l, "mitigation-rate-per-min")
		spec.Limits.StreamBuffer = d.optInt(l, "stream-buffer")
	}
	return spec
}

func (d *configDecoder) decodeSource(n *yamlNode) SourceSpec {
	spec := SourceSpec{}
	if n.kind != yMap {
		d.fail(n.line, "each source must be a mapping with a \"type\"")
		return spec
	}
	d.checkKeys(n, "type", "name", "url", "addr", "path", "interval", "lgs", "speed", "max-events-per-sec")
	spec.Type = d.optScalar(n, "type")
	spec.Name = d.optScalar(n, "name")
	spec.URL = d.optScalar(n, "url")
	spec.Addr = d.optScalar(n, "addr")
	spec.Path = d.optScalar(n, "path")
	spec.Interval = d.optDuration(n, "interval")
	spec.Speed = d.optFloat(n, "speed")
	spec.MaxEventsPerSec = d.optInt(n, "max-events-per-sec")
	if lg := n.child("lgs"); lg != nil {
		for _, item := range d.scalarList(lg) {
			spec.LGs = append(spec.LGs, item.scalar)
		}
	}
	if err := spec.validate(); err != nil {
		d.fail(n.line, "%v", err)
	}
	return spec
}

func (d *configDecoder) isMap(n *yamlNode, what string) bool {
	if n.kind != yMap {
		d.fail(n.line, "%s must be a mapping", what)
		return false
	}
	return true
}

// scalarList returns a node's items as scalars, accepting both block and
// inline sequences (and a bare scalar as a one-element list).
func (d *configDecoder) scalarList(n *yamlNode) []*yamlNode {
	if n == nil {
		return nil
	}
	switch n.kind {
	case yScalar:
		if n.scalar == "" {
			return nil
		}
		return []*yamlNode{n}
	case yList:
		out := make([]*yamlNode, 0, len(n.items))
		for _, item := range n.items {
			if item.kind != yScalar {
				d.fail(item.line, "expected a scalar list item")
				continue
			}
			out = append(out, item)
		}
		return out
	default:
		d.fail(n.line, "expected a sequence")
		return nil
	}
}

func (d *configDecoder) asASN(n *yamlNode) uint32 {
	v, err := strconv.ParseUint(n.scalar, 10, 32)
	if err != nil {
		d.fail(n.line, "bad ASN %q", n.scalar)
		return 0
	}
	return uint32(v)
}

func (d *configDecoder) optScalar(n *yamlNode, key string) string {
	c := n.child(key)
	if c == nil {
		return ""
	}
	if c.kind != yScalar {
		d.fail(c.line, "%s must be a scalar", key)
		return ""
	}
	return c.scalar
}

func (d *configDecoder) optInt(n *yamlNode, key string) int {
	c := n.child(key)
	if c == nil {
		return 0
	}
	v, err := strconv.Atoi(c.scalar)
	if err != nil || c.kind != yScalar {
		d.fail(c.line, "%s must be an integer", key)
		return 0
	}
	return v
}

func (d *configDecoder) optFloat(n *yamlNode, key string) float64 {
	c := n.child(key)
	if c == nil {
		return 0
	}
	v, err := strconv.ParseFloat(c.scalar, 64)
	if err != nil || c.kind != yScalar {
		d.fail(c.line, "%s must be a number", key)
		return 0
	}
	return v
}

func (d *configDecoder) optBool(n *yamlNode, key string) bool {
	c := n.child(key)
	if c == nil {
		return false
	}
	switch c.scalar {
	case "true":
		return true
	case "false":
		return false
	}
	d.fail(c.line, "%s must be true or false", key)
	return false
}

func (d *configDecoder) optDuration(n *yamlNode, key string) Duration {
	c := n.child(key)
	if c == nil {
		return 0
	}
	v, err := time.ParseDuration(c.scalar)
	if err != nil || c.kind != yScalar {
		d.fail(c.line, "%s must be a duration like \"15s\"", key)
		return 0
	}
	return Duration(v)
}
