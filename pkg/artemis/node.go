// Package artemis is the embeddable public facade over the ARTEMIS
// reproduction (conf_sigcomm_ChaviarasGSD16): self-operated BGP hijack
// detection and mitigation for the network that owns the prefixes.
//
// A Node assembles the whole stack — sharded detection pipeline,
// incremental monitor, bounded async mitigation, supervised multi-source
// ingest — behind one declarative Config and a Run(ctx)/Drain lifecycle:
//
//	cfg, err := artemis.LoadConfig("artemis.yaml")
//	node, err := artemis.New(cfg)
//	sub := node.Subscribe(artemis.KindAll, 64)
//	go consume(sub.C)
//	err = node.Run(ctx) // blocks; drains gracefully on ctx cancel
//
// Everything is live-reconfigurable while traffic flows: owned prefixes
// and origins (AddPrefixes/RemovePrefixes/SetOrigins swap the detector's
// routing trie, the pipeline's shard routing, the monitor's probe set and
// the mitigation clamps atomically, at a well-defined serial position in
// the event stream) and monitoring sources (AddSource/RemoveSource ride
// the ingest supervisor's hot add/remove). The sibling package
// pkg/artemis/control serves this API over versioned HTTP.
package artemis

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"slices"
	"sync"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/controller"
	"artemis/internal/core"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
)

// Node is one embedded ARTEMIS instance.
type Node struct {
	opts options
	now  func() time.Duration

	svc  *core.Service
	pl   *core.Pipeline
	sup  *ingest.Supervisor
	ctrl *controller.Controller
	bus  *eventBus
	// injectPool recycles Inject's submission batches: the pipeline copies
	// every batch during Submit, so Inject can build observations in
	// pooled storage and release it immediately — a caller-side inject
	// loop allocates nothing per call at steady state.
	injectPool *feedtypes.BatchPool

	mu      sync.Mutex
	cfg     *Config // current declarative config, kept in sync with CRUD
	sources map[string]sourceEntry
	srcSeq  map[string]int
	running bool

	drainOnce sync.Once
	drained   chan struct{}
	runExited chan struct{}
}

type sourceEntry struct {
	id   ingest.SourceID
	spec SourceSpec
}

// New validates cfg and assembles a node. Monitoring sources start
// dialing when Run is called; configuration CRUD and Subscribe work
// immediately. cfg is deep-copied.
func New(cfg *Config, opts ...Option) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.Clone()
	n := &Node{
		cfg:        cfg,
		bus:        newEventBus(),
		sources:    make(map[string]sourceEntry),
		srcSeq:     make(map[string]int),
		drained:    make(chan struct{}),
		runExited:  make(chan struct{}),
		injectPool: feedtypes.NewBatchPool(),
	}
	for _, o := range opts {
		o(&n.opts)
	}
	n.now = n.opts.now
	if n.now == nil {
		start := time.Now()
		n.now = func() time.Duration { return time.Since(start) }
	}
	if n.opts.logf == nil {
		n.opts.logf = log.Printf
	}

	ccfg, err := coreConfig(cfg)
	if err != nil {
		return nil, err
	}
	inj, manual := n.southbound(cfg)
	ccfg.ManualMitigation = manual
	delay := cfg.Mitigation.ConfigDelay.Std()
	switch {
	case delay < 0:
		delay = 0 // explicit "no controller latency"
	case delay == 0:
		delay = controller.DefaultConfigDelay
	}
	n.ctrl = controller.New(inj, n.now,
		func(d time.Duration, fn func()) { time.AfterFunc(d, fn) },
		controller.WithConfigDelay(delay))
	n.svc, err = core.NewService(ccfg, n.ctrl, n.now, core.WithAsyncMitigation(cfg.Mitigation.QueueDepth))
	if err != nil {
		return nil, err
	}
	n.pl = core.NewPipeline(n.svc.Detector, n.svc.Monitor, core.PipelineConfig{Shards: cfg.Tuning.Shards})
	n.svc.BindPipeline(n.pl)
	n.sup = ingest.New(n.pl.Submit, ingest.Config{
		QueueDepth: cfg.Tuning.SourceQueue,
		DedupTTL:   cfg.Tuning.DedupTTL.Std(),
		OnHealth: func(tr ingest.HealthTransition) {
			h := healthFromIngest(tr)
			n.opts.logf("artemis: source %s: %s -> %s", h.Source, h.From, h.To)
			n.bus.publish(Event{Kind: KindHealth, SourceHealth: &h})
		},
	})
	n.svc.Detector.OnAlert(func(a core.Alert) {
		pub := alertFromCore(a)
		n.opts.logf("artemis: ALERT %s: %s announced by AS%d (collides with owned %s, via %s/%s vp AS%d)",
			pub.Type, pub.Prefix, pub.Origin, pub.Owned, pub.Source, pub.Collector, pub.VantagePoint)
		n.bus.publish(Event{Kind: KindAlert, Alert: &pub})
	})
	n.svc.Mitigator.OnRecord(func(r core.MitigationRecord) {
		pub := mitigationFromCore(r)
		n.bus.publish(Event{Kind: KindMitigation, Mitigation: &pub})
	})
	// Normalize configured sources now (default names, duplicate checks);
	// they start dialing when Run attaches them.
	specs := n.cfg.Sources
	n.cfg.Sources = nil
	for _, spec := range specs {
		if _, err := n.AddSource(spec); err != nil {
			n.shutdown()
			return nil, err
		}
	}
	return n, nil
}

// southbound resolves the mitigation injector: explicit option, REST
// controller URL, or detection-only (manual).
func (n *Node) southbound(cfg *Config) (controller.RouteInjector, bool) {
	manual := cfg.Mitigation.Manual
	switch {
	case n.opts.inject != nil:
		return injectorAdapter{n.opts.inject}, manual
	case cfg.Mitigation.Controller != "":
		return controller.NewRESTClient(cfg.Mitigation.Controller), manual
	default:
		return noopInjector{}, true
	}
}

// coreConfig lowers the declarative config to the core's typed one.
func coreConfig(cfg *Config) (*core.Config, error) {
	ccfg := &core.Config{
		MaxDeaggregationLen:  cfg.Mitigation.MaxDeaggLen,
		MaxDeaggregationLen6: cfg.Mitigation.MaxDeaggLen6,
		AlertDedupTTL:        cfg.Tuning.AlertTTL.Std(),
		AlertDedupMax:        cfg.Tuning.AlertDedupMax,
	}
	switch {
	case ccfg.AlertDedupTTL < 0:
		ccfg.AlertDedupTTL = 0 // explicit "dedup forever" (core's 0)
	case ccfg.AlertDedupTTL == 0:
		ccfg.AlertDedupTTL = 24 * time.Hour // unset → daemon default
	}
	if ccfg.AlertDedupMax == 0 {
		ccfg.AlertDedupMax = 1 << 16
	}
	for _, s := range cfg.Prefixes {
		p, err := prefix.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("artemis: bad prefix %q: %v", s, err)
		}
		ccfg.OwnedPrefixes = append(ccfg.OwnedPrefixes, p)
	}
	for _, o := range cfg.Origins {
		ccfg.LegitOrigins = append(ccfg.LegitOrigins, bgp.ASN(o))
	}
	if len(cfg.Upstreams) > 0 {
		ccfg.AllowedUpstreams = make(map[bgp.ASN][]bgp.ASN, len(cfg.Upstreams))
		for origin, ups := range cfg.Upstreams {
			list := make([]bgp.ASN, len(ups))
			for i, u := range ups {
				list[i] = bgp.ASN(u)
			}
			ccfg.AllowedUpstreams[bgp.ASN(origin)] = list
		}
	}
	return ccfg, nil
}

// filterProvider returns the live subscription filter: the active owned
// space, both directions. Dialers resolve it per (re)dial, the periscope
// poller per round.
func (n *Node) filterProvider() feedtypes.Filter {
	return feedtypes.Filter{
		Prefixes:     n.svc.CurrentConfig().OwnedPrefixes,
		MoreSpecific: true,
		LessSpecific: true,
	}
}

// Run starts the configured monitoring sources and blocks until ctx is
// cancelled or Drain is called, then shuts down gracefully in dependency
// order: sources stop (no new batches), the pipeline flushes and closes
// (classification and alert commit complete), the mitigation queue drains
// (every accepted alert handled), and event subscriptions close. Run may
// be called at most once; the node cannot be restarted after it returns.
func (n *Node) Run(ctx context.Context) error {
	n.mu.Lock()
	if n.running {
		n.mu.Unlock()
		return fmt.Errorf("artemis: Run called twice")
	}
	n.running = true
	err := n.attachDeferredLocked()
	n.mu.Unlock()
	defer close(n.runExited)
	if err != nil {
		n.shutdown()
		return err
	}
	select {
	case <-ctx.Done():
	case <-n.drained:
	}
	n.shutdown()
	return nil
}

// attachDeferredLocked dials every source registered before Run.
func (n *Node) attachDeferredLocked() error {
	for _, spec := range n.cfg.Sources {
		e := n.sources[spec.Name]
		if e.id >= 0 {
			continue
		}
		dialer, opts, err := n.dialerFor(spec)
		if err != nil {
			return err
		}
		id := n.sup.AddDialer(spec.Name, dialer, opts...)
		if id < 0 {
			return fmt.Errorf("artemis: node already drained")
		}
		e.id = id
		n.sources[spec.Name] = e
	}
	return nil
}

// Drain triggers the same graceful shutdown Run performs on context
// cancellation and waits for it to complete. Safe to call concurrently
// and more than once; also usable on a node that was never Run (it then
// releases the assembled goroutines).
func (n *Node) Drain() {
	n.drainOnce.Do(func() { close(n.drained) })
	n.mu.Lock()
	ran := n.running
	n.mu.Unlock()
	if ran {
		<-n.runExited
		return
	}
	n.shutdown()
}

func (n *Node) shutdown() {
	n.opts.logf("artemis: draining (sources -> pipeline -> mitigation queue)")
	n.sup.Close()
	n.pl.Flush()
	n.pl.Close()
	n.svc.Close()
	n.bus.close()
}

// --- live reconfiguration ---

// AddPrefixes hot-adds owned prefixes (canonical or parseable text form).
// The detector, pipeline routing, monitor probes, mitigation clamps and
// ingest filters all swap atomically; server-side-filtered sources are
// bounced so their subscriptions cover the new space. No-op prefixes
// (already owned) are rejected.
func (n *Node) AddPrefixes(prefixes ...string) error {
	return n.reconfigure(func(cfg *Config) error {
		for _, s := range prefixes {
			p, err := prefix.Parse(s)
			if err != nil {
				return fmt.Errorf("artemis: bad prefix %q: %v", s, err)
			}
			for _, have := range cfg.Prefixes {
				if q, _ := prefix.Parse(have); q == p {
					return fmt.Errorf("artemis: prefix %q already owned", s)
				}
			}
			cfg.Prefixes = append(cfg.Prefixes, p.String())
		}
		return nil
	})
}

// RemovePrefixes hot-removes owned prefixes. Incidents already raised for
// them keep their history; new announcements of the removed space stop
// alerting.
func (n *Node) RemovePrefixes(prefixes ...string) error {
	return n.reconfigure(func(cfg *Config) error {
		for _, s := range prefixes {
			p, err := prefix.Parse(s)
			if err != nil {
				return fmt.Errorf("artemis: bad prefix %q: %v", s, err)
			}
			found := -1
			for i, have := range cfg.Prefixes {
				if q, _ := prefix.Parse(have); q == p {
					found = i
					break
				}
			}
			if found < 0 {
				return fmt.Errorf("artemis: prefix %q not owned", s)
			}
			cfg.Prefixes = append(cfg.Prefixes[:found], cfg.Prefixes[found+1:]...)
		}
		return nil
	})
}

// SetOrigins replaces the legitimate-origin set.
func (n *Node) SetOrigins(origins ...uint32) error {
	return n.reconfigure(func(cfg *Config) error {
		if len(origins) == 0 {
			return fmt.Errorf("artemis: at least one origin required")
		}
		cfg.Origins = append([]uint32(nil), origins...)
		return nil
	})
}

// reconfigure mutates a clone of the declarative config, validates it,
// swaps the core atomically at a pipeline barrier, and bounces the
// sources whose subscription filters are bound per connection.
func (n *Node) reconfigure(mutate func(*Config) error) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	next := n.cfg.Clone()
	if err := mutate(next); err != nil {
		return err
	}
	if err := next.Validate(); err != nil {
		return err
	}
	ccfg, err := coreConfig(next)
	if err != nil {
		return err
	}
	cur := n.svc.CurrentConfig()
	ccfg.ManualMitigation = cur.ManualMitigation
	ccfg.AlertDedupTTL = cur.AlertDedupTTL
	ccfg.AlertDedupMax = cur.AlertDedupMax
	if err := n.svc.Reconfigure(ccfg); err != nil {
		return err
	}
	prefixesChanged := !slices.Equal(n.cfg.Prefixes, next.Prefixes)
	n.cfg = next
	if prefixesChanged {
		for _, e := range n.sources {
			switch e.spec.Type {
			case SourceRIS, SourceBGPmon:
				// Subscription filters are bound per connection for these
				// transports; a bounce redials with the new owned space.
				n.sup.Bounce(e.id)
			}
		}
		n.opts.logf("artemis: reconfigured: now watching %v", next.Prefixes)
	}
	return nil
}

// AddSource hot-adds a monitoring source and returns its name. Before
// Run, the source is recorded and dialed once Run starts; during Run it
// starts dialing immediately.
func (n *Node) AddSource(spec SourceSpec) (string, error) {
	if err := spec.validate(); err != nil {
		return "", err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("%s[%d]", spec.Type, n.srcSeq[spec.Type])
	}
	if _, dup := n.sources[spec.Name]; dup {
		return "", fmt.Errorf("artemis: source %q already exists", spec.Name)
	}
	if !n.running {
		// Deferred: Run attaches it.
		n.srcSeq[spec.Type]++
		n.cfg.Sources = append(n.cfg.Sources, spec)
		n.sources[spec.Name] = sourceEntry{id: -1, spec: spec}
		return spec.Name, nil
	}
	dialer, opts, err := n.dialerFor(spec)
	if err != nil {
		return "", err
	}
	id := n.sup.AddDialer(spec.Name, dialer, opts...)
	if id < 0 {
		return "", fmt.Errorf("artemis: node already drained")
	}
	n.srcSeq[spec.Type]++
	n.cfg.Sources = append(n.cfg.Sources, spec)
	n.sources[spec.Name] = sourceEntry{id: id, spec: spec}
	n.opts.logf("artemis: source %s added (%s)", spec.Name, spec.Type)
	return spec.Name, nil
}

// dialerFor builds the transport dialer for a source spec. Every dialer
// resolves the subscription filter live (dial time or poll time), which
// is what makes prefix hot-adds reach running sources.
func (n *Node) dialerFor(spec SourceSpec) (ingest.Dialer, []ingest.SourceOption, error) {
	switch spec.Type {
	case SourceRIS:
		return ingest.RISDialerDynamic(spec.URL, n.filterProvider), nil, nil
	case SourceBGPmon:
		return ingest.BGPmonDialerDynamic(spec.Addr, n.filterProvider), nil, nil
	case SourceMRT:
		path := spec.Path
		open := func() (io.ReadCloser, error) { return os.Open(path) }
		return ingest.MRTReplayDialer(open, path), []ingest.SourceOption{ingest.Blocking()}, nil
	case SourcePeriscope:
		return ingest.PeriscopeDialer(spec.URL, ingest.PeriscopeConfig{
			LGs:          spec.LGs,
			Filter:       n.filterProvider,
			PollInterval: spec.Interval.Std(),
			Now:          n.now,
		}), nil, nil
	}
	return nil, nil, fmt.Errorf("artemis: unknown source type %q", spec.Type)
}

// RemoveSource hot-removes a source by name: its connection closes,
// already-queued batches still drain.
func (n *Node) RemoveSource(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.sources[name]
	if !ok {
		return fmt.Errorf("artemis: unknown source %q", name)
	}
	delete(n.sources, name)
	for i := range n.cfg.Sources {
		if n.cfg.Sources[i].Name == name {
			n.cfg.Sources = append(n.cfg.Sources[:i], n.cfg.Sources[i+1:]...)
			break
		}
	}
	if e.id >= 0 {
		n.sup.Remove(e.id)
	}
	n.opts.logf("artemis: source %s removed", name)
	return nil
}

// --- introspection ---

// Config returns a deep copy of the current declarative configuration,
// reflecting all live reconfiguration so far.
func (n *Node) Config() *Config {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.Clone()
}

// Subscribe returns a bounded subscription to the node's typed events.
// kinds OR together (0 means KindAll); buffer <= 0 selects 64.
func (n *Node) Subscribe(kinds EventKind, buffer int) *Subscription {
	return n.bus.subscribe(kinds, buffer)
}

// Alerts returns every alert raised so far, oldest first.
func (n *Node) Alerts() []Alert {
	core := n.svc.Detector.Alerts()
	out := make([]Alert, len(core))
	for i, a := range core {
		out[i] = alertFromCore(a)
	}
	return out
}

// Mitigations returns every mitigation attempt so far, oldest first.
func (n *Node) Mitigations() []Mitigation {
	recs := n.svc.Mitigator.Records()
	out := make([]Mitigation, len(recs))
	for i, r := range recs {
		out[i] = mitigationFromCore(r)
	}
	return out
}

// SourceStatus is one supervised source's health and throughput.
type SourceStatus struct {
	Name  string `json:"name"`
	Type  string `json:"type,omitempty"`
	State string `json:"state"`
	// Events/Batches count deliveries into the pipeline after dedup.
	Events  int64 `json:"events"`
	Batches int64 `json:"batches"`
	// DedupHits were suppressed as cross-source duplicates; Drops shed by
	// the source's own queue bound; Reconnects counts redials.
	DedupHits  int64 `json:"dedup_hits"`
	Drops      int64 `json:"drops"`
	Reconnects int64 `json:"reconnects"`
}

// Health summarizes the node for operators: overall status plus
// per-source detail. Status is "ok" when every source is connecting or
// healthy, "degraded" when any source is backing off, and "critical"
// when a live source is dead. A dead MRT replay does not escalate: a
// finite archive ending is its normal completion, not an outage.
type Health struct {
	Status  string         `json:"status"`
	Sources []SourceStatus `json:"sources"`
}

// Health reports the current health summary.
func (n *Node) Health() Health {
	n.mu.Lock()
	types := make(map[string]string, len(n.sources))
	for name, e := range n.sources {
		types[name] = e.spec.Type
	}
	n.mu.Unlock()
	h := Health{Status: "ok"}
	for _, src := range n.sup.Snapshot().Sources {
		h.Sources = append(h.Sources, SourceStatus{
			Name:       src.Name,
			Type:       types[src.Name],
			State:      src.State,
			Events:     src.Events,
			Batches:    src.Batches,
			DedupHits:  src.DedupHits,
			Drops:      src.Drops,
			Reconnects: src.Reconnects,
		})
		switch src.State {
		case ingest.StateDegraded.String():
			if h.Status == "ok" {
				h.Status = "degraded"
			}
		case ingest.StateDead.String():
			if types[src.Name] != SourceMRT {
				h.Status = "critical"
			}
		}
	}
	return h
}

// WriteMetrics renders the node's Prometheus-style text metrics — the
// same body GET /metrics serves.
func (n *Node) WriteMetrics(w io.Writer) {
	n.sup.Snapshot().WriteProm(w)
	n.pl.Snapshot().WriteProm(w)
	n.svc.Mitigation.Snapshot().WriteProm(w)
	fmt.Fprintf(w, "artemis_alerts_total %d\n", n.svc.Detector.AlertCount())
	fmt.Fprintf(w, "artemis_alert_dedup_size %d\n", n.svc.Detector.DedupSize())
	fmt.Fprintf(w, "artemis_controller_failed_actions_total %d\n", n.ctrl.Failures())
	snap := n.svc.Monitor.Snapshot(n.now())
	fmt.Fprintf(w, "artemis_monitor_legit_vps %d\n", snap.LegitVPs)
	fmt.Fprintf(w, "artemis_monitor_hijacked_vps %d\n", snap.HijackedVPs)
	fmt.Fprintf(w, "artemis_monitor_unknown_vps %d\n", snap.UnknownVPs)
}

// RouteObservation is one observed routing change for Inject — the
// bring-your-own-feed path for embedders whose monitoring infrastructure
// is not one of the built-in transports.
type RouteObservation struct {
	// Source/Collector label the observation's origin (defaults:
	// "embedded"/"embedded").
	Source    string `json:"source,omitempty"`
	Collector string `json:"collector,omitempty"`
	// VantagePoint is the AS whose routing view changed.
	VantagePoint uint32 `json:"vantage_point"`
	// Withdraw marks a route removal; otherwise an announcement.
	Withdraw bool   `json:"withdraw,omitempty"`
	Prefix   string `json:"prefix"`
	// Path is the AS path as seen from the vantage point (first element
	// the vantage point, last the origin). Empty for withdrawals.
	Path []uint32 `json:"path,omitempty"`
}

// Inject feeds observations straight into the detection pipeline,
// bypassing the ingest supervisor (no cross-source dedup). Observations
// are stamped with the node clock. The pipeline copies the batch during
// Submit, so Inject builds it in pooled storage and recycles it before
// returning — a steady inject loop performs no per-call allocations
// (docs/PERFORMANCE.md).
func (n *Node) Inject(obs ...RouteObservation) error {
	batch := n.injectPool.Get()
	defer batch.Release()
	for _, o := range obs {
		p, err := prefix.Parse(o.Prefix)
		if err != nil {
			return fmt.Errorf("artemis: bad prefix %q: %v", o.Prefix, err)
		}
		ev := feedtypes.Event{
			Source:       o.Source,
			Collector:    o.Collector,
			VantagePoint: bgp.ASN(o.VantagePoint),
			Prefix:       p,
			SeenAt:       n.now(),
			EmittedAt:    n.now(),
		}
		if ev.Source == "" {
			ev.Source = "embedded"
		}
		if ev.Collector == "" {
			ev.Collector = "embedded"
		}
		if o.Withdraw {
			ev.Kind = feedtypes.Withdraw
		} else {
			ev.Kind = feedtypes.Announce
			path := batch.NewPath(len(o.Path))
			for j, a := range o.Path {
				path[j] = bgp.ASN(a)
			}
			ev.Path = path
		}
		batch.Append(ev)
	}
	n.pl.Submit(batch.Events)
	return nil
}

// injectorAdapter lowers the public string-typed RouteInjector to the
// controller's typed southbound.
type injectorAdapter struct{ inj RouteInjector }

func (a injectorAdapter) AnnounceRoute(p prefix.Prefix) error { return a.inj.AnnounceRoute(p.String()) }
func (a injectorAdapter) WithdrawRoute(p prefix.Prefix) error { return a.inj.WithdrawRoute(p.String()) }

// noopInjector is the detection-only southbound.
type noopInjector struct{}

func (noopInjector) AnnounceRoute(prefix.Prefix) error { return nil }
func (noopInjector) WithdrawRoute(prefix.Prefix) error { return nil }
