// Package artemis is the embeddable public facade over the ARTEMIS
// reproduction (conf_sigcomm_ChaviarasGSD16): self-operated BGP hijack
// detection and mitigation for the network that owns the prefixes.
//
// A Node assembles the whole stack — sharded detection pipeline,
// incremental monitor, bounded async mitigation, supervised multi-source
// ingest — behind one declarative Config and a Run(ctx)/Drain lifecycle:
//
//	cfg, err := artemis.LoadConfig("artemis.yaml")
//	node, err := artemis.New(cfg)
//	sub := node.Subscribe(artemis.KindAll, 64)
//	go consume(sub.C)
//	err = node.Run(ctx) // blocks; drains gracefully on ctx cancel
//
// Everything is live-reconfigurable while traffic flows: owned prefixes
// and origins (AddPrefixes/RemovePrefixes/SetOrigins swap the detector's
// routing trie, the pipeline's shard routing, the monitor's probe set and
// the mitigation clamps atomically, at a well-defined serial position in
// the event stream) and monitoring sources (AddSource/RemoveSource ride
// the ingest supervisor's hot add/remove). The sibling package
// pkg/artemis/control serves this API over versioned HTTP.
//
// # Multi-tenancy
//
// A hosted node protects many networks at once: Config.Tenants declares
// additional named config scopes (prefixes, origins, neighbor policy,
// limits) beyond the implicit "default" tenant formed by the top-level
// fields. All tenants share ONE pipeline and one feed union — the ingest
// subscription covers every tenant's space, and each matched event is
// classified once per owning tenant under that tenant's own policy.
// Alerts, mitigations, events and metrics are tenant-scoped; per-tenant
// limits (classification quota, mitigation rate, stream buffers) isolate
// a tenant under a hijack storm from the rest. AddTenant/RemoveTenant
// are hot, and with Control.StateFile set every change survives a
// restart.
package artemis

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/controller"
	"artemis/internal/core"
	"artemis/internal/feeds/eventlog"
	"artemis/internal/feeds/feedtypes"
	"artemis/internal/ingest"
	"artemis/internal/prefix"
	"artemis/internal/rib"
	"artemis/internal/rpki"
	"artemis/internal/stats"
)

// Node is one embedded ARTEMIS instance — single-tenant by default, a
// hosted multi-tenant deployment when Config.Tenants is set.
type Node struct {
	opts options
	now  func() time.Duration

	pl  *core.Pipeline
	sup *ingest.Supervisor
	bus *eventBus
	// rec, when Config.Record is set, archives the post-dedup event
	// stream to rotated segment files (docs/INTERCHANGE.md). Fixed at
	// construction; nil means no recording.
	rec *eventlog.Recorder
	// Feed-event firehose: bounded taps on the post-dedup stream for
	// GET /v1/events/stream. feedTaps is the hot-path guard — deliver
	// skips the fan-out entirely (no lock, no copies) while it is zero.
	feedMu     sync.Mutex
	feedSubs   map[*EventStreamSub]struct{}
	feedClosed bool
	feedTaps   atomic.Int32
	// injectPool recycles Inject's submission batches: the pipeline copies
	// every batch during Submit, so Inject can build observations in
	// pooled storage and release it immediately — a caller-side inject
	// loop allocates nothing per call at steady state.
	injectPool *feedtypes.BatchPool

	// union is the current feed-filter prefix union across all tenants,
	// stored atomically so dialer goroutines resolve it without taking the
	// node lock (a bounce during reconfiguration holds that lock).
	union atomic.Value // []prefix.Prefix
	// authFailures counts rejected control-plane requests (also published
	// as KindAuth events).
	authFailures atomic.Int64

	// Route intelligence (routeintel.go), fixed at construction: the
	// longest-prefix-match route table behind /v1/lookup (nil when the
	// rib: block is off), its bootstrap statistics, the AS-name registry,
	// and the current ROA table (swapped live by the rpki: refresh loop).
	rib     *rib.Table
	ribLoad rib.LoadStats
	asNames *rib.ASNames
	roas    atomic.Pointer[rpki.Table]

	// Southbound wiring, fixed at construction and reused when tenants
	// are added later.
	inj       controller.RouteInjector
	manual    bool
	ctrlDelay time.Duration

	mu      sync.Mutex
	cfg     *Config // current declarative config, kept in sync with CRUD
	tenants map[string]*tenantState
	order   []string // table order; order[i] owns policy-table entry i
	table   *core.PolicyTable
	sources map[string]sourceEntry
	srcSeq  map[string]int
	running bool

	drainOnce sync.Once
	drained   chan struct{}
	runExited chan struct{}
}

// tenantState is one tenant's service stack: its own detector, monitor,
// mitigation queue and controller client over the shared pipeline.
type tenantState struct {
	name string
	svc  *core.Service
	ctrl *controller.Controller
}

type sourceEntry struct {
	id   ingest.SourceID
	spec SourceSpec
}

// New validates cfg and assembles a node. Monitoring sources start
// dialing when Run is called; configuration CRUD and Subscribe work
// immediately. cfg is deep-copied.
func New(cfg *Config, opts ...Option) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.Clone()
	n := &Node{
		cfg:        cfg,
		bus:        newEventBus(),
		tenants:    make(map[string]*tenantState),
		sources:    make(map[string]sourceEntry),
		srcSeq:     make(map[string]int),
		drained:    make(chan struct{}),
		runExited:  make(chan struct{}),
		injectPool: feedtypes.NewBatchPool(),
		feedSubs:   make(map[*EventStreamSub]struct{}),
	}
	for _, o := range opts {
		o(&n.opts)
	}
	n.now = n.opts.now
	if n.now == nil {
		start := time.Now()
		n.now = func() time.Duration { return time.Since(start) }
	}
	if n.opts.logf == nil {
		n.opts.logf = log.Printf
	}

	// Route-intelligence state loads before the tenant stacks: their core
	// configs embed the ROA table snapshot.
	if err := n.setupRouteIntel(cfg); err != nil {
		return nil, err
	}

	n.inj, n.manual = n.southbound(cfg)
	n.ctrlDelay = cfg.Mitigation.ConfigDelay.Std()
	switch {
	case n.ctrlDelay < 0:
		n.ctrlDelay = 0 // explicit "no controller latency"
	case n.ctrlDelay == 0:
		n.ctrlDelay = controller.DefaultConfigDelay
	}

	if cfg.Record.Path != "" {
		rec, err := eventlog.NewRecorder(eventlog.RecorderConfig{
			Prefix:       cfg.Record.Path,
			MaxFileBytes: cfg.Record.MaxFileSize,
			MaxFileAge:   cfg.Record.MaxFileAge.Std(),
			QueueDepth:   cfg.Record.QueueDepth,
		})
		if err != nil {
			return nil, err
		}
		n.rec = rec
	}

	// One service stack per tenant, all classifying on one shared
	// pipeline under one policy table.
	policies := make([]core.TenantPolicy, 0, 1+len(cfg.Tenants))
	closeTenants := func() {
		for _, ts := range n.tenants {
			ts.svc.Close()
		}
		if n.rec != nil {
			n.rec.Close()
		}
	}
	for _, sc := range cfg.scopes() {
		ts, pol, err := n.newTenant(sc, cfg)
		if err != nil {
			closeTenants()
			return nil, err
		}
		n.tenants[sc.Name] = ts
		n.order = append(n.order, sc.Name)
		policies = append(policies, pol)
	}
	table, err := core.NewPolicyTable(policies)
	if err != nil {
		closeTenants()
		return nil, err
	}
	table.OnQuotaDrop(n.publishQuotaDrop)
	n.table = table
	n.union.Store(table.UnionFilter())
	n.pl = core.NewPipelineTable(table, core.PipelineConfig{Shards: cfg.Tuning.Shards})
	for name, ts := range n.tenants {
		ts.svc.BindReconfigureVia(n.tenantBarrier(name))
	}
	n.sup = ingest.New(n.deliver, ingest.Config{
		QueueDepth: cfg.Tuning.SourceQueue,
		DedupTTL:   cfg.Tuning.DedupTTL.Std(),
		OnHealth: func(tr ingest.HealthTransition) {
			h := healthFromIngest(tr)
			n.opts.logf("artemis: source %s: %s -> %s", h.Source, h.From, h.To)
			n.bus.publish(Event{Kind: KindHealth, SourceHealth: &h})
		},
	})
	// Normalize configured sources now (default names, duplicate checks);
	// they start dialing when Run attaches them.
	specs := n.cfg.Sources
	n.cfg.Sources = nil
	for _, spec := range specs {
		if _, err := n.AddSource(spec); err != nil {
			n.shutdown()
			return nil, err
		}
	}
	return n, nil
}

// newTenant builds one tenant's service stack and its policy-table entry.
func (n *Node) newTenant(sc TenantSpec, cfg *Config) (*tenantState, core.TenantPolicy, error) {
	ccfg, err := lowerScope(sc, cfg)
	if err != nil {
		return nil, core.TenantPolicy{}, err
	}
	ccfg.ManualMitigation = n.manual
	ccfg.RPKI = n.roas.Load()
	ctrl := controller.New(n.inj, n.now,
		func(d time.Duration, fn func()) { time.AfterFunc(d, fn) },
		controller.WithConfigDelay(n.ctrlDelay))
	svc, err := core.NewService(ccfg, ctrl, n.now, core.WithAsyncMitigation(cfg.Mitigation.QueueDepth))
	if err != nil {
		return nil, core.TenantPolicy{}, err
	}
	name := sc.Name
	svc.Detector.OnAlert(func(a core.Alert) {
		pub := alertFromCore(a)
		pub.Tenant = name
		n.enrichAlert(&pub)
		who := fmt.Sprintf("AS%d", pub.Origin)
		if pub.OriginName != "" {
			who += " (" + pub.OriginName
			if pub.OriginLocale != "" {
				who += ", " + pub.OriginLocale
			}
			who += ")"
		}
		rpkiNote := ""
		if pub.RPKI != "" {
			rpkiNote = ", rpki " + pub.RPKI
		}
		n.opts.logf("artemis: ALERT [%s] %s: %s announced by %s (collides with owned %s, via %s/%s vp AS%d%s)",
			name, pub.Type, pub.Prefix, who, pub.Owned, pub.Source, pub.Collector, pub.VantagePoint, rpkiNote)
		n.bus.publish(Event{Kind: KindAlert, Tenant: name, Alert: &pub})
	})
	svc.Mitigator.OnRecord(func(r core.MitigationRecord) {
		pub := mitigationFromCore(r)
		pub.Alert.Tenant = name
		n.bus.publish(Event{Kind: KindMitigation, Tenant: name, Mitigation: &pub})
	})
	svc.OnMitigationDrop(func(core.Alert) {
		n.bus.publish(Event{Kind: KindLimit, Tenant: name,
			Limit: &LimitEvent{Tenant: name, Limit: "mitigation-rate", Count: 1}})
	})
	ts := &tenantState{name: name, svc: svc, ctrl: ctrl}
	pol := core.TenantPolicy{Name: name, Config: ccfg, Detector: svc.Detector, Monitor: svc.Monitor}
	return ts, pol, nil
}

// tenantBarrier is the reconfiguration executor bound to one tenant's
// service: derive the next shared policy table (this tenant's config
// replaced, everything else carried over) and swap it at the pipeline's
// sink barrier. It always runs with n.mu held — every tenant Reconfigure
// call comes from a node mutation path.
func (n *Node) tenantBarrier(name string) func(next *core.Config, onApply func()) {
	return func(next *core.Config, onApply func()) {
		i := slices.Index(n.order, name)
		if i < 0 {
			onApply() // tenant was removed; nothing routes to it anymore
			return
		}
		nt := n.table.WithConfig(i, next)
		n.table = nt
		n.union.Store(nt.UnionFilter())
		n.pl.ReconfigureTable(nt, onApply)
	}
}

// publishQuotaDrop surfaces a batch's per-tenant classification-quota
// drops as a KindLimit event (the drops are already counted in the
// tenant's runtime). Runs on the pipeline's sink goroutine.
func (n *Node) publishQuotaDrop(tenant string, dropped int64) {
	n.bus.publish(Event{Kind: KindLimit, Tenant: tenant,
		Limit: &LimitEvent{Tenant: tenant, Limit: "classification-quota", Count: dropped}})
}

// southbound resolves the mitigation injector: explicit option, REST
// controller URL, or detection-only (manual).
func (n *Node) southbound(cfg *Config) (controller.RouteInjector, bool) {
	manual := cfg.Mitigation.Manual
	switch {
	case n.opts.inject != nil:
		return injectorAdapter{n.opts.inject}, manual
	case cfg.Mitigation.Controller != "":
		return controller.NewRESTClient(cfg.Mitigation.Controller), manual
	default:
		return noopInjector{}, true
	}
}

// scopes lists the config's tenant scopes in policy-table order: the
// implicit default tenant (top-level prefixes) first when present, then
// Tenants in declaration order.
func (c *Config) scopes() []TenantSpec {
	out := make([]TenantSpec, 0, 1+len(c.Tenants))
	if len(c.Prefixes) > 0 {
		out = append(out, TenantSpec{
			Name: DefaultTenant, Prefixes: c.Prefixes, Origins: c.Origins, Upstreams: c.Upstreams,
		})
	}
	return append(out, c.Tenants...)
}

// scope returns the named tenant scope.
func (c *Config) scope(name string) (TenantSpec, bool) {
	for _, sc := range c.scopes() {
		if sc.Name == name {
			return sc, true
		}
	}
	return TenantSpec{}, false
}

// mutateScope applies mutate to the named scope inside cfg, writing the
// default tenant's fields back to the top level.
func mutateScope(cfg *Config, tenant string, mutate func(*TenantSpec) error) error {
	if tenant == DefaultTenant {
		if len(cfg.Prefixes) == 0 {
			return fmt.Errorf("artemis: unknown tenant %q", tenant)
		}
		sc := TenantSpec{Name: DefaultTenant, Prefixes: cfg.Prefixes, Origins: cfg.Origins, Upstreams: cfg.Upstreams}
		if err := mutate(&sc); err != nil {
			return err
		}
		cfg.Prefixes, cfg.Origins, cfg.Upstreams = sc.Prefixes, sc.Origins, sc.Upstreams
		return nil
	}
	for i := range cfg.Tenants {
		if cfg.Tenants[i].Name == tenant {
			return mutate(&cfg.Tenants[i])
		}
	}
	return fmt.Errorf("artemis: unknown tenant %q", tenant)
}

// lowerScope lowers one tenant scope plus the shared tuning to the
// core's typed config.
func lowerScope(sc TenantSpec, cfg *Config) (*core.Config, error) {
	ccfg := &core.Config{
		MaxDeaggregationLen:  cfg.Mitigation.MaxDeaggLen,
		MaxDeaggregationLen6: cfg.Mitigation.MaxDeaggLen6,
		AlertDedupTTL:        cfg.Tuning.AlertTTL.Std(),
		AlertDedupMax:        cfg.Tuning.AlertDedupMax,
		MaxMitigationRetries: cfg.Tuning.MaxMitigationRetries,
		MaxEventsPerSecond:   sc.Limits.MaxEventsPerSec,
		MitigationRatePerMin: sc.Limits.MitigationRatePerMin,
	}
	switch {
	case ccfg.AlertDedupTTL < 0:
		ccfg.AlertDedupTTL = 0 // explicit "dedup forever" (core's 0)
	case ccfg.AlertDedupTTL == 0:
		ccfg.AlertDedupTTL = 24 * time.Hour // unset → daemon default
	}
	if ccfg.AlertDedupMax == 0 {
		ccfg.AlertDedupMax = 1 << 16
	}
	for _, s := range sc.Prefixes {
		p, err := prefix.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("artemis: bad prefix %q: %v", s, err)
		}
		ccfg.OwnedPrefixes = append(ccfg.OwnedPrefixes, p)
	}
	for _, o := range sc.Origins {
		ccfg.LegitOrigins = append(ccfg.LegitOrigins, bgp.ASN(o))
	}
	if len(sc.Upstreams) > 0 {
		ccfg.AllowedUpstreams = make(map[bgp.ASN][]bgp.ASN, len(sc.Upstreams))
		for origin, ups := range sc.Upstreams {
			list := make([]bgp.ASN, len(ups))
			for i, u := range ups {
				list[i] = bgp.ASN(u)
			}
			ccfg.AllowedUpstreams[bgp.ASN(origin)] = list
		}
	}
	return ccfg, nil
}

// filterProvider returns the live subscription filter: the union of
// every tenant's owned space, both directions. Dialers resolve it per
// (re)dial, the periscope poller per round.
func (n *Node) filterProvider() feedtypes.Filter {
	pfx, _ := n.union.Load().([]prefix.Prefix)
	return feedtypes.Filter{
		Prefixes:     pfx,
		MoreSpecific: true,
		LessSpecific: true,
	}
}

// deliver is the ingest supervisor's sink: every post-dedup batch
// enters the detection pipeline and, when enabled, the archive
// recorder and the event firehose. Both taps stay off the hot path
// when unused — with no recorder configured and no stream subscribers
// this is exactly n.pl.Submit, and the recorder itself copies into
// pooled storage without blocking on I/O.
func (n *Node) deliver(evs []feedtypes.Event) {
	n.pl.Submit(evs)
	if n.rib != nil {
		// Fold the batch into the route table (its own lock; paths are
		// deep-copied there because batch storage is pooled).
		n.rib.Apply(evs)
	}
	if n.rec != nil {
		n.rec.Record(evs)
	}
	if n.feedTaps.Load() > 0 {
		n.fanOutEvents(evs)
	}
}

// EventStreamSub is one bounded tap on the node's post-dedup feed
// event stream (the raw observations, before classification) — the
// mechanism behind GET /v1/events/stream. Slow consumers shed: when
// the buffer is full events are dropped and counted, never allowed to
// backpressure ingest.
type EventStreamSub struct {
	n       *Node
	scope   feedtypes.Filter
	scoped  bool
	ch      chan feedtypes.Event
	dropped atomic.Int64
	once    sync.Once
}

// Events is the subscription channel. It closes when the subscriber
// calls Close or the node drains. Path slices are owned by the
// receiver.
func (s *EventStreamSub) Events() <-chan feedtypes.Event { return s.ch }

// Dropped reports how many events were shed because the subscriber
// fell behind.
func (s *EventStreamSub) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel.
func (s *EventStreamSub) Close() {
	s.n.feedMu.Lock()
	if _, ok := s.n.feedSubs[s]; ok {
		delete(s.n.feedSubs, s)
		s.n.feedTaps.Add(-1)
	}
	s.once.Do(func() { close(s.ch) })
	s.n.feedMu.Unlock()
}

// SubscribeEvents taps the post-dedup feed event stream. tenant ""
// (admin scope) sees everything; a tenant name scopes the stream to
// events matching that tenant's owned space at subscribe time, both
// directions — the same routing rule classification uses. buffer <= 0
// selects 256; a tenant's Limits.StreamBuffer caps it.
func (n *Node) SubscribeEvents(tenant string, buffer int) (*EventStreamSub, error) {
	if buffer <= 0 {
		buffer = 256
	}
	s := &EventStreamSub{n: n}
	if tenant != "" {
		n.mu.Lock()
		sc, found := n.cfg.scope(tenant)
		n.mu.Unlock()
		if !found {
			return nil, fmt.Errorf("artemis: unknown tenant %q", tenant)
		}
		if sc.Limits.StreamBuffer > 0 && buffer > sc.Limits.StreamBuffer {
			buffer = sc.Limits.StreamBuffer
		}
		pfx := make([]prefix.Prefix, 0, len(sc.Prefixes))
		for _, str := range sc.Prefixes {
			p, err := prefix.Parse(str)
			if err != nil {
				return nil, fmt.Errorf("artemis: bad prefix %q: %v", str, err)
			}
			pfx = append(pfx, p)
		}
		s.scoped = true
		s.scope = feedtypes.Filter{Prefixes: pfx, MoreSpecific: true, LessSpecific: true}
	}
	s.ch = make(chan feedtypes.Event, buffer)
	n.feedMu.Lock()
	if n.feedClosed {
		s.once.Do(func() { close(s.ch) })
	} else {
		n.feedSubs[s] = struct{}{}
		n.feedTaps.Add(1)
	}
	n.feedMu.Unlock()
	return s, nil
}

// fanOutEvents copies the batch to every stream subscriber whose scope
// matches. Path slices are copied once per event (not per subscriber)
// because the batch storage is recycled after deliver returns;
// subscribers may hold events indefinitely.
func (n *Node) fanOutEvents(evs []feedtypes.Event) {
	n.feedMu.Lock()
	defer n.feedMu.Unlock()
	if len(n.feedSubs) == 0 {
		return
	}
	for _, ev := range evs {
		copied := false
		for s := range n.feedSubs {
			if s.scoped && !s.scope.Match(ev.Prefix) {
				continue
			}
			if !copied && len(ev.Path) != 0 {
				ev.Path = append([]bgp.ASN(nil), ev.Path...)
				copied = true
			}
			select {
			case s.ch <- ev:
			default:
				s.dropped.Add(1)
			}
		}
	}
}

// closeEventStreams ends every firehose subscription at drain.
func (n *Node) closeEventStreams() {
	n.feedMu.Lock()
	n.feedClosed = true
	for s := range n.feedSubs {
		delete(n.feedSubs, s)
		n.feedTaps.Add(-1)
		s.once.Do(func() { close(s.ch) })
	}
	n.feedMu.Unlock()
}

// RecordStatus reports the archive recorder's counters, or false when
// recording is not configured.
func (n *Node) RecordStatus() (eventlog.RecorderSnapshot, bool) {
	if n.rec == nil {
		return eventlog.RecorderSnapshot{}, false
	}
	return n.rec.Snapshot(), true
}

// Run starts the configured monitoring sources and blocks until ctx is
// cancelled or Drain is called, then shuts down gracefully in dependency
// order: sources stop (no new batches), the pipeline flushes and closes
// (classification and alert commit complete), the mitigation queues drain
// (every accepted alert handled), and event subscriptions close. Run may
// be called at most once; the node cannot be restarted after it returns.
func (n *Node) Run(ctx context.Context) error {
	n.mu.Lock()
	if n.running {
		n.mu.Unlock()
		return fmt.Errorf("artemis: Run called twice")
	}
	n.running = true
	err := n.attachDeferredLocked()
	rpkiURL, rpkiRefresh := n.cfg.RPKI.URL, n.cfg.RPKI.Refresh.Std()
	n.mu.Unlock()
	defer close(n.runExited)
	if err != nil {
		n.shutdown()
		return err
	}
	if rpkiURL != "" && rpkiRefresh > 0 {
		go n.refreshRPKILoop(ctx, rpkiURL, rpkiRefresh)
	}
	select {
	case <-ctx.Done():
	case <-n.drained:
	}
	n.shutdown()
	return nil
}

// attachDeferredLocked dials every source registered before Run.
func (n *Node) attachDeferredLocked() error {
	for _, spec := range n.cfg.Sources {
		e := n.sources[spec.Name]
		if e.id >= 0 {
			continue
		}
		dialer, opts, err := n.dialerFor(spec)
		if err != nil {
			return err
		}
		id := n.sup.AddDialer(spec.Name, dialer, opts...)
		if id < 0 {
			return fmt.Errorf("artemis: node already drained")
		}
		e.id = id
		n.sources[spec.Name] = e
	}
	return nil
}

// Drain triggers the same graceful shutdown Run performs on context
// cancellation and waits for it to complete. Safe to call concurrently
// and more than once; also usable on a node that was never Run (it then
// releases the assembled goroutines).
func (n *Node) Drain() {
	n.drainOnce.Do(func() { close(n.drained) })
	n.mu.Lock()
	ran := n.running
	n.mu.Unlock()
	if ran {
		<-n.runExited
		return
	}
	n.shutdown()
}

func (n *Node) shutdown() {
	n.opts.logf("artemis: draining (sources -> pipeline -> mitigation queues)")
	n.sup.Close()
	n.pl.Flush()
	n.pl.Close()
	if n.rec != nil {
		n.rec.Close() // queue drains; final segment flushes
	}
	n.closeEventStreams()
	n.mu.Lock()
	tenants := make([]*tenantState, 0, len(n.tenants))
	for _, ts := range n.tenants {
		tenants = append(tenants, ts)
	}
	n.mu.Unlock()
	for _, ts := range tenants {
		ts.svc.Close()
	}
	n.bus.close()
}

// --- live reconfiguration ---

// AddPrefixes hot-adds owned prefixes (canonical or parseable text form)
// to the default tenant. The detector, pipeline routing, monitor probes,
// mitigation clamps and ingest filters all swap atomically;
// server-side-filtered sources are bounced so their subscriptions cover
// the new space. No-op prefixes (already owned) are rejected.
func (n *Node) AddPrefixes(prefixes ...string) error {
	return n.AddTenantPrefixes(DefaultTenant, prefixes...)
}

// AddTenantPrefixes is AddPrefixes scoped to one tenant.
func (n *Node) AddTenantPrefixes(tenant string, prefixes ...string) error {
	return n.reconfigureTenant(tenant, func(sc *TenantSpec) error {
		for _, s := range prefixes {
			p, err := prefix.Parse(s)
			if err != nil {
				return fmt.Errorf("artemis: bad prefix %q: %v", s, err)
			}
			for _, have := range sc.Prefixes {
				if q, _ := prefix.Parse(have); q == p {
					return fmt.Errorf("artemis: prefix %q already owned", s)
				}
			}
			sc.Prefixes = append(sc.Prefixes, p.String())
		}
		return nil
	})
}

// RemovePrefixes hot-removes owned prefixes from the default tenant.
// Incidents already raised for them keep their history; new announcements
// of the removed space stop alerting.
func (n *Node) RemovePrefixes(prefixes ...string) error {
	return n.RemoveTenantPrefixes(DefaultTenant, prefixes...)
}

// RemoveTenantPrefixes is RemovePrefixes scoped to one tenant.
func (n *Node) RemoveTenantPrefixes(tenant string, prefixes ...string) error {
	return n.reconfigureTenant(tenant, func(sc *TenantSpec) error {
		for _, s := range prefixes {
			p, err := prefix.Parse(s)
			if err != nil {
				return fmt.Errorf("artemis: bad prefix %q: %v", s, err)
			}
			found := -1
			for i, have := range sc.Prefixes {
				if q, _ := prefix.Parse(have); q == p {
					found = i
					break
				}
			}
			if found < 0 {
				return fmt.Errorf("artemis: prefix %q not owned", s)
			}
			sc.Prefixes = append(sc.Prefixes[:found], sc.Prefixes[found+1:]...)
		}
		return nil
	})
}

// SetOrigins replaces the default tenant's legitimate-origin set.
func (n *Node) SetOrigins(origins ...uint32) error {
	return n.SetTenantOrigins(DefaultTenant, origins...)
}

// SetTenantOrigins replaces one tenant's legitimate-origin set.
func (n *Node) SetTenantOrigins(tenant string, origins ...uint32) error {
	return n.reconfigureTenant(tenant, func(sc *TenantSpec) error {
		if len(origins) == 0 {
			return fmt.Errorf("artemis: at least one origin required")
		}
		sc.Origins = append([]uint32(nil), origins...)
		return nil
	})
}

// Upstreams returns a tenant's path-anomaly neighbor policy (origin →
// allowed adjacent ASes), nil when the tenant has none.
func (n *Node) Upstreams(tenant string) (map[uint32][]uint32, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sc, ok := n.cfg.scope(tenant)
	if !ok {
		return nil, fmt.Errorf("artemis: unknown tenant %q", tenant)
	}
	return cloneUpstreams(sc.Upstreams), nil
}

// SetUpstreams replaces a tenant's path-anomaly neighbor policy and
// swaps it live; nil/empty disables path-anomaly detection for the
// tenant. Persists like every other mutation.
func (n *Node) SetUpstreams(tenant string, upstreams map[uint32][]uint32) error {
	return n.reconfigureTenant(tenant, func(sc *TenantSpec) error {
		if len(upstreams) == 0 {
			sc.Upstreams = nil
			return nil
		}
		sc.Upstreams = cloneUpstreams(upstreams)
		return nil
	})
}

// SetTenantLimits replaces a tenant's isolation limits live. The default
// tenant (the operator's own prefixes) has no limits.
func (n *Node) SetTenantLimits(tenant string, limits TenantLimits) error {
	if tenant == DefaultTenant {
		return fmt.Errorf("artemis: the default tenant has no limits")
	}
	if limits.MaxEventsPerSec < 0 || limits.MitigationRatePerMin < 0 || limits.StreamBuffer < 0 {
		return fmt.Errorf("artemis: tenant limits must be non-negative")
	}
	return n.reconfigureTenant(tenant, func(sc *TenantSpec) error {
		sc.Limits = limits
		return nil
	})
}

// reconfigureTenant mutates one tenant's scope on a clone of the
// declarative config, validates it, swaps that tenant's core config
// atomically at a pipeline barrier (the shared policy table is rebuilt;
// other tenants are untouched), bounces sources whose subscription
// filters are bound per connection, and persists the result.
func (n *Node) reconfigureTenant(tenant string, mutate func(*TenantSpec) error) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	ts, ok := n.tenants[tenant]
	if !ok {
		return fmt.Errorf("artemis: unknown tenant %q", tenant)
	}
	next := n.cfg.Clone()
	if err := mutateScope(next, tenant, mutate); err != nil {
		return err
	}
	if err := next.Validate(); err != nil {
		return err
	}
	sc, _ := next.scope(tenant)
	ccfg, err := lowerScope(sc, next)
	if err != nil {
		return err
	}
	ccfg.ManualMitigation = ts.svc.CurrentConfig().ManualMitigation
	ccfg.RPKI = n.roas.Load()
	if err := ts.svc.Reconfigure(ccfg); err != nil {
		return err
	}
	old, _ := n.cfg.scope(tenant)
	prefixesChanged := !slices.Equal(old.Prefixes, sc.Prefixes)
	n.cfg = next
	if prefixesChanged {
		n.bounceFilteredSourcesLocked()
		n.opts.logf("artemis: reconfigured tenant %s: now watching %v", tenant, sc.Prefixes)
	}
	n.persistLocked()
	return nil
}

// bounceFilteredSourcesLocked redials the sources whose subscription
// filters are bound per connection, so they cover the new owned union.
func (n *Node) bounceFilteredSourcesLocked() {
	for _, e := range n.sources {
		switch e.spec.Type {
		case SourceRIS, SourceBGPmon:
			n.sup.Bounce(e.id)
		}
	}
}

// --- tenant CRUD ---

// AddTenant hot-adds a tenant: its own detector, monitor and mitigation
// stack attach to the shared pipeline at a sink barrier, and the feed
// union widens to cover its prefixes. Persists via the state file.
func (n *Node) AddTenant(spec TenantSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.tenants[spec.Name]; dup {
		return fmt.Errorf("artemis: tenant %q already exists", spec.Name)
	}
	next := n.cfg.Clone()
	next.Tenants = append(next.Tenants, spec.Clone())
	if err := next.Validate(); err != nil {
		return err
	}
	ts, _, err := n.newTenant(spec, next)
	if err != nil {
		return err
	}
	ts.svc.BindReconfigureVia(n.tenantBarrier(spec.Name))
	tenants := make(map[string]*tenantState, len(n.tenants)+1)
	for k, v := range n.tenants {
		tenants[k] = v
	}
	tenants[spec.Name] = ts
	if err := n.retableLocked(append(append([]string(nil), n.order...), spec.Name), tenants); err != nil {
		ts.svc.Close()
		return err
	}
	n.cfg = next
	n.bounceFilteredSourcesLocked()
	n.persistLocked()
	n.opts.logf("artemis: tenant %s added (%d prefixes)", spec.Name, len(spec.Prefixes))
	return nil
}

// RemoveTenant hot-removes a tenant: the shared table stops routing to
// it at a sink barrier, then its service stack drains. Its alert history
// is discarded with it. The default tenant cannot be removed this way —
// it is the top-level prefixes; remove those instead.
func (n *Node) RemoveTenant(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if name == DefaultTenant {
		return fmt.Errorf("artemis: tenant %q is the top-level prefixes; remove those instead", name)
	}
	ts, ok := n.tenants[name]
	if !ok {
		return fmt.Errorf("artemis: unknown tenant %q", name)
	}
	if len(n.order) == 1 {
		return fmt.Errorf("artemis: cannot remove the last tenant")
	}
	next := n.cfg.Clone()
	for i := range next.Tenants {
		if next.Tenants[i].Name == name {
			next.Tenants = append(next.Tenants[:i], next.Tenants[i+1:]...)
			break
		}
	}
	order := make([]string, 0, len(n.order)-1)
	for _, o := range n.order {
		if o != name {
			order = append(order, o)
		}
	}
	tenants := make(map[string]*tenantState, len(n.tenants)-1)
	for k, v := range n.tenants {
		if k != name {
			tenants[k] = v
		}
	}
	if err := n.retableLocked(order, tenants); err != nil {
		return err
	}
	n.cfg = next
	// The barrier has applied: no in-flight batch references this
	// tenant's detector anymore, so its stack can drain.
	ts.svc.Close()
	n.bounceFilteredSourcesLocked()
	n.persistLocked()
	n.opts.logf("artemis: tenant %s removed", name)
	return nil
}

// retableLocked installs a policy table for the given tenant order at
// the pipeline's sink barrier, carrying each retained tenant's runtime
// counters (quota buckets, event counts) across the swap.
func (n *Node) retableLocked(order []string, tenants map[string]*tenantState) error {
	policies := make([]core.TenantPolicy, len(order))
	for i, name := range order {
		ts := tenants[name]
		policies[i] = core.TenantPolicy{
			Name:     name,
			Config:   ts.svc.CurrentConfig(),
			Detector: ts.svc.Detector,
			Monitor:  ts.svc.Monitor,
			Runtime:  n.table.Runtime(name), // nil for new tenants → fresh
		}
	}
	table, err := core.NewPolicyTable(policies)
	if err != nil {
		return err
	}
	table.OnQuotaDrop(n.publishQuotaDrop)
	n.pl.ReconfigureTable(table, func() {})
	n.table = table
	n.order = order
	n.tenants = tenants
	n.union.Store(table.UnionFilter())
	return nil
}

// ReplaceConfig atomically replaces the whole declarative configuration:
// tenant membership and scopes, sources, and the hot-tunable bounds
// (alert dedup TTL/size, mitigation retries, per-tenant limits) all
// swap live; construction-time fields (mitigation southbound, shard
// count, source queues) are stored and persisted but only take effect on
// restart. This is POST /v1/config — and, with a state file, how a
// hosted deployment's whole tenant store is replaced and survives
// restarts.
func (n *Node) ReplaceConfig(next *Config) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	next = next.Clone()
	// The state file and listen address identify THIS node; a config
	// replace must not silently re-point persistence or auth elsewhere.
	next.Control = n.cfg.Control
	if err := next.Validate(); err != nil {
		return err
	}
	want := next.scopes()
	wantNames := make(map[string]bool, len(want))
	for _, sc := range want {
		wantNames[sc.Name] = true
	}
	// Build the next tenant set: retained stacks carry over (history,
	// counters, quota state), new scopes get fresh stacks.
	order := make([]string, 0, len(want))
	tenants := make(map[string]*tenantState, len(want))
	var added []*tenantState
	for _, sc := range want {
		if ts, ok := n.tenants[sc.Name]; ok {
			tenants[sc.Name] = ts
		} else {
			ts, _, err := n.newTenant(sc, next)
			if err != nil {
				for _, a := range added {
					a.svc.Close()
				}
				return err
			}
			ts.svc.BindReconfigureVia(n.tenantBarrier(sc.Name))
			tenants[sc.Name] = ts
			added = append(added, ts)
		}
		order = append(order, sc.Name)
	}
	var removed []*tenantState
	for name, ts := range n.tenants {
		if !wantNames[name] {
			removed = append(removed, ts)
		}
	}
	if err := n.retableLocked(order, tenants); err != nil {
		for _, a := range added {
			a.svc.Close()
		}
		return err
	}
	n.cfg = next
	// Retained tenants now reconfigure to their new scopes: each swap is
	// its own barrier under the new table order.
	for _, sc := range want {
		ts := tenants[sc.Name]
		if slices.Contains(added, ts) {
			continue
		}
		ccfg, err := lowerScope(sc, next)
		if err != nil {
			return err
		}
		ccfg.ManualMitigation = ts.svc.CurrentConfig().ManualMitigation
		ccfg.RPKI = n.roas.Load()
		if err := ts.svc.Reconfigure(ccfg); err != nil {
			return err
		}
	}
	for _, ts := range removed {
		ts.svc.Close()
	}
	if err := n.replaceSourcesLocked(next.Sources); err != nil {
		return err
	}
	n.bounceFilteredSourcesLocked()
	n.persistLocked()
	n.opts.logf("artemis: configuration replaced (%d tenants, %d sources)", len(order), len(n.cfg.Sources))
	return nil
}

// replaceSourcesLocked diffs the supervised sources against specs:
// named sources with an unchanged spec keep their connection, everything
// else is removed and (re-)added.
func (n *Node) replaceSourcesLocked(specs []SourceSpec) error {
	keep := make(map[string]bool, len(specs))
	var toAdd []SourceSpec
	for _, spec := range specs {
		if spec.Name != "" {
			if e, ok := n.sources[spec.Name]; ok && sourceSpecEqual(e.spec, spec) {
				keep[spec.Name] = true
				continue
			}
		}
		toAdd = append(toAdd, spec)
	}
	n.cfg.Sources = nil
	for name, e := range n.sources {
		if keep[name] {
			n.cfg.Sources = append(n.cfg.Sources, e.spec)
			continue
		}
		delete(n.sources, name)
		if e.id >= 0 {
			n.sup.Remove(e.id)
		}
	}
	for _, spec := range toAdd {
		if _, err := n.addSourceLocked(spec); err != nil {
			return err
		}
	}
	return nil
}

func sourceSpecEqual(a, b SourceSpec) bool {
	return a.Type == b.Type && a.Name == b.Name && a.URL == b.URL &&
		a.Addr == b.Addr && a.Path == b.Path && a.Interval == b.Interval &&
		slices.Equal(a.LGs, b.LGs)
}

// --- persistence ---

// persistLocked writes the current declarative config to the state file
// (write-to-temp + rename, so a crash never leaves a torn file), when
// one is configured. Persistence failures are logged, not returned: the
// in-memory reconfiguration already succeeded.
func (n *Node) persistLocked() {
	path := n.cfg.Control.StateFile
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(n.cfg, "", "  ")
	if err != nil {
		n.opts.logf("artemis: state persist: %v", err)
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o600); err != nil {
		n.opts.logf("artemis: state persist: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		n.opts.logf("artemis: state persist: %v", err)
	}
}

// LoadState reads a config persisted by a node with Control.StateFile
// set — the JSON twin of LoadConfig, used by the daemon to prefer the
// durable tenant store over the original config file across restarts.
func LoadState(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &Config{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return cfg, nil
}

// --- authentication ---

// AuthScope is a resolved control-plane credential.
type AuthScope struct {
	// Admin grants every endpoint across all tenants.
	Admin bool
	// Tenant, when non-empty, restricts the caller to that tenant's
	// resources.
	Tenant string
}

// Allows reports whether the scope may act on the named tenant.
func (s AuthScope) Allows(tenant string) bool {
	return s.Admin || (s.Tenant != "" && s.Tenant == tenant)
}

// Secured reports whether any control-plane token is configured. An
// unsecured node (no admin token, no tenant tokens) serves its API open
// — the single-operator back-compat mode.
func (n *Node) Secured() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.securedLocked()
}

func (n *Node) securedLocked() bool {
	if n.cfg.Control.AdminToken != "" {
		return true
	}
	for i := range n.cfg.Tenants {
		if n.cfg.Tenants[i].Token != "" {
			return true
		}
	}
	return false
}

// Authenticate resolves a bearer token to its scope. On an unsecured
// node every token (including none) resolves to admin. Comparison is
// constant-time per candidate, and every candidate is always examined —
// a miss costs the same as a late hit.
func (n *Node) Authenticate(token string) (AuthScope, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.securedLocked() {
		return AuthScope{Admin: true}, true
	}
	scope, found := AuthScope{}, false
	if a := n.cfg.Control.AdminToken; a != "" && tokenEqual(token, a) {
		scope, found = AuthScope{Admin: true}, true
	}
	for i := range n.cfg.Tenants {
		t := &n.cfg.Tenants[i]
		if t.Token != "" && tokenEqual(token, t.Token) && !found {
			scope, found = AuthScope{Tenant: t.Name}, true
		}
	}
	return scope, found
}

func tokenEqual(a, b string) bool {
	return subtle.ConstantTimeCompare([]byte(a), []byte(b)) == 1
}

// ReportAuthFailure records one rejected control-plane request: counted
// in /metrics (artemis_auth_failures_total) and published as a KindAuth
// event, so failed auth is observable rather than a silent 401. The
// control package calls it; embedders fronting the node with their own
// auth may too.
func (n *Node) ReportAuthFailure(path, tenant, reason string) {
	n.authFailures.Add(1)
	f := AuthFailure{Path: path, Tenant: tenant, Reason: reason}
	n.bus.publish(Event{Kind: KindAuth, Auth: &f})
}

// AuthFailures reports how many control-plane requests were rejected.
func (n *Node) AuthFailures() int64 { return n.authFailures.Load() }

// --- source CRUD ---

// AddSource hot-adds a monitoring source and returns its name. Before
// Run, the source is recorded and dialed once Run starts; during Run it
// starts dialing immediately. Sources are shared across tenants.
func (n *Node) AddSource(spec SourceSpec) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	name, err := n.addSourceLocked(spec)
	if err == nil {
		n.persistLocked()
	}
	return name, err
}

func (n *Node) addSourceLocked(spec SourceSpec) (string, error) {
	if err := spec.validate(); err != nil {
		return "", err
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("%s[%d]", spec.Type, n.srcSeq[spec.Type])
	}
	if _, dup := n.sources[spec.Name]; dup {
		return "", fmt.Errorf("artemis: source %q already exists", spec.Name)
	}
	if !n.running {
		// Deferred: Run attaches it.
		n.srcSeq[spec.Type]++
		n.cfg.Sources = append(n.cfg.Sources, spec)
		n.sources[spec.Name] = sourceEntry{id: -1, spec: spec}
		return spec.Name, nil
	}
	dialer, opts, err := n.dialerFor(spec)
	if err != nil {
		return "", err
	}
	id := n.sup.AddDialer(spec.Name, dialer, opts...)
	if id < 0 {
		return "", fmt.Errorf("artemis: node already drained")
	}
	n.srcSeq[spec.Type]++
	n.cfg.Sources = append(n.cfg.Sources, spec)
	n.sources[spec.Name] = sourceEntry{id: id, spec: spec}
	n.opts.logf("artemis: source %s added (%s)", spec.Name, spec.Type)
	return spec.Name, nil
}

// dialerFor builds the transport dialer for a source spec. Every dialer
// resolves the subscription filter live (dial time or poll time), which
// is what makes prefix hot-adds reach running sources.
func (n *Node) dialerFor(spec SourceSpec) (ingest.Dialer, []ingest.SourceOption, error) {
	dialer, opts, err := n.dialerForType(spec)
	if err != nil {
		return nil, nil, err
	}
	if spec.MaxEventsPerSec > 0 {
		// Applies to every transport: blocking sources are paced,
		// drop-policy sources shed (counted in rate_shed_total).
		opts = append(opts, ingest.RateLimit(spec.MaxEventsPerSec))
	}
	return dialer, opts, nil
}

func (n *Node) dialerForType(spec SourceSpec) (ingest.Dialer, []ingest.SourceOption, error) {
	switch spec.Type {
	case SourceRIS:
		return ingest.RISDialerDynamic(spec.URL, n.filterProvider), nil, nil
	case SourceBGPmon:
		return ingest.BGPmonDialerDynamic(spec.Addr, n.filterProvider), nil, nil
	case SourceMRT:
		path := spec.Path
		open := func() (io.ReadCloser, error) { return os.Open(path) }
		return ingest.MRTReplayDialer(open, path), []ingest.SourceOption{ingest.Blocking()}, nil
	case SourcePeriscope:
		return ingest.PeriscopeDialer(spec.URL, ingest.PeriscopeConfig{
			LGs:          spec.LGs,
			Filter:       n.filterProvider,
			PollInterval: spec.Interval.Std(),
			Now:          n.now,
		}), nil, nil
	case SourceBMP:
		return ingest.BMPDialerConfig(spec.Addr, ingest.BMPConfig{
			Filter: n.filterProvider,
			Now:    n.now,
			OnPeer: func(pe ingest.BMPPeerEvent) {
				if pe.Up {
					n.opts.logf("artemis: bmp %s: peer %s AS%d up", pe.Collector, pe.Addr, pe.AS)
				} else {
					n.opts.logf("artemis: bmp %s: peer %s AS%d down (reason %d)", pe.Collector, pe.Addr, pe.AS, pe.Reason)
				}
			},
		}), nil, nil
	case SourceReplay:
		// Blocking: an archive replay must deliver every event — pacing
		// comes from the recorded timestamps, loss would change history.
		return ingest.EventLogFileDialer(spec.Path, ingest.EventLogReplay{Speed: spec.Speed}),
			[]ingest.SourceOption{ingest.Blocking()}, nil
	}
	return nil, nil, fmt.Errorf("artemis: unknown source type %q", spec.Type)
}

// RemoveSource hot-removes a source by name: its connection closes,
// already-queued batches still drain.
func (n *Node) RemoveSource(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.removeSourceLocked(name); err != nil {
		return err
	}
	n.persistLocked()
	return nil
}

func (n *Node) removeSourceLocked(name string) error {
	e, ok := n.sources[name]
	if !ok {
		return fmt.Errorf("artemis: unknown source %q", name)
	}
	delete(n.sources, name)
	for i := range n.cfg.Sources {
		if n.cfg.Sources[i].Name == name {
			n.cfg.Sources = append(n.cfg.Sources[:i], n.cfg.Sources[i+1:]...)
			break
		}
	}
	if e.id >= 0 {
		n.sup.Remove(e.id)
	}
	n.opts.logf("artemis: source %s removed", name)
	return nil
}

// --- introspection ---

// Config returns a deep copy of the current declarative configuration,
// reflecting all live reconfiguration so far.
func (n *Node) Config() *Config {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.Clone()
}

// Subscribe returns a bounded subscription to the node's typed events
// across all tenants. kinds OR together (0 means KindAll); buffer <= 0
// selects 64.
func (n *Node) Subscribe(kinds EventKind, buffer int) *Subscription {
	return n.bus.subscribe(kinds, buffer)
}

// SubscribeTenant returns a bounded subscription scoped to one tenant:
// it delivers that tenant's events plus node-global ones (source
// health). The tenant's Limits.StreamBuffer caps the buffer, bounding
// what one tenant's subscribers can pin in shared memory.
func (n *Node) SubscribeTenant(tenant string, kinds EventKind, buffer int) (*Subscription, error) {
	n.mu.Lock()
	_, known := n.tenants[tenant]
	maxBuf := 0
	if sc, found := n.cfg.scope(tenant); found {
		maxBuf = sc.Limits.StreamBuffer
	}
	n.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("artemis: unknown tenant %q", tenant)
	}
	if buffer <= 0 {
		buffer = 64
	}
	if maxBuf > 0 && buffer > maxBuf {
		buffer = maxBuf
	}
	return n.bus.subscribeTenant(tenant, true, kinds, buffer), nil
}

// TenantNames returns the tenants in policy-table order.
func (n *Node) TenantNames() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.order...)
}

// TenantStatus summarizes one tenant for operators: its scope plus the
// isolation counters (matched events, quota drops, mitigation-rate
// drops) that show whether its limits are biting.
type TenantStatus struct {
	Name     string   `json:"name"`
	Prefixes []string `json:"prefixes"`
	Origins  []uint32 `json:"origins"`
	// Alerts counts incidents the tenant's policy has raised.
	Alerts int `json:"alerts"`
	// Events counts matched events routed to the tenant; QuotaDrops and
	// MitigationRateDrops count work its limits shed.
	Events              int64        `json:"events"`
	QuotaDrops          int64        `json:"quota_drops"`
	MitigationRateDrops int64        `json:"mitigation_rate_drops"`
	Limits              TenantLimits `json:"limits,omitzero"`
	// HasToken reports whether the tenant has its own bearer token (the
	// token itself is never serialized here).
	HasToken bool `json:"has_token,omitempty"`
}

// Tenants summarizes every tenant, in policy-table order.
func (n *Node) Tenants() []TenantStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]TenantStatus, 0, len(n.order))
	for _, name := range n.order {
		st, _ := n.tenantStatusLocked(name)
		out = append(out, st)
	}
	return out
}

// TenantStatus summarizes one tenant by name.
func (n *Node) TenantStatus(name string) (TenantStatus, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tenantStatusLocked(name)
}

func (n *Node) tenantStatusLocked(name string) (TenantStatus, error) {
	ts, ok := n.tenants[name]
	if !ok {
		return TenantStatus{}, fmt.Errorf("artemis: unknown tenant %q", name)
	}
	sc, _ := n.cfg.scope(name)
	st := TenantStatus{
		Name:                name,
		Prefixes:            append([]string(nil), sc.Prefixes...),
		Origins:             append([]uint32(nil), sc.Origins...),
		Alerts:              ts.svc.Detector.AlertCount(),
		MitigationRateDrops: ts.svc.MitigationRateDrops(),
		Limits:              sc.Limits,
		HasToken:            sc.Token != "",
	}
	if rt := n.table.Runtime(name); rt != nil {
		st.Events = rt.Events()
		st.QuotaDrops = rt.QuotaDrops()
	}
	return st, nil
}

// Alerts returns every alert raised so far across all tenants, grouped
// by tenant in policy-table order (oldest first within a tenant).
func (n *Node) Alerts() []Alert {
	n.mu.Lock()
	tenants := n.orderedTenantsLocked()
	n.mu.Unlock()
	var out []Alert
	for _, ts := range tenants {
		for _, a := range ts.svc.Detector.Alerts() {
			pub := alertFromCore(a)
			pub.Tenant = ts.name
			n.enrichAlert(&pub)
			out = append(out, pub)
		}
	}
	return out
}

// TenantAlerts returns one tenant's alerts, oldest first.
func (n *Node) TenantAlerts(tenant string) ([]Alert, error) {
	n.mu.Lock()
	ts, ok := n.tenants[tenant]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("artemis: unknown tenant %q", tenant)
	}
	alerts := ts.svc.Detector.Alerts()
	out := make([]Alert, len(alerts))
	for i, a := range alerts {
		out[i] = alertFromCore(a)
		out[i].Tenant = tenant
		n.enrichAlert(&out[i])
	}
	return out, nil
}

// Mitigations returns every mitigation attempt so far across all
// tenants, grouped by tenant in policy-table order.
func (n *Node) Mitigations() []Mitigation {
	n.mu.Lock()
	tenants := n.orderedTenantsLocked()
	n.mu.Unlock()
	var out []Mitigation
	for _, ts := range tenants {
		for _, r := range ts.svc.Mitigator.Records() {
			pub := mitigationFromCore(r)
			pub.Alert.Tenant = ts.name
			out = append(out, pub)
		}
	}
	return out
}

// TenantMitigations returns one tenant's mitigation attempts, oldest
// first.
func (n *Node) TenantMitigations(tenant string) ([]Mitigation, error) {
	n.mu.Lock()
	ts, ok := n.tenants[tenant]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("artemis: unknown tenant %q", tenant)
	}
	recs := ts.svc.Mitigator.Records()
	out := make([]Mitigation, len(recs))
	for i, r := range recs {
		out[i] = mitigationFromCore(r)
		out[i].Alert.Tenant = tenant
	}
	return out, nil
}

// orderedTenantsLocked snapshots the tenant stacks in table order.
func (n *Node) orderedTenantsLocked() []*tenantState {
	out := make([]*tenantState, 0, len(n.order))
	for _, name := range n.order {
		out = append(out, n.tenants[name])
	}
	return out
}

// SourceStatus is one supervised source's health and throughput.
type SourceStatus struct {
	Name  string `json:"name"`
	Type  string `json:"type,omitempty"`
	State string `json:"state"`
	// Events/Batches count deliveries into the pipeline after dedup.
	Events  int64 `json:"events"`
	Batches int64 `json:"batches"`
	// DedupHits were suppressed as cross-source duplicates; Drops shed by
	// the source's own queue bound; RateShed shed by the source's
	// configured rate limit; Reconnects counts redials.
	DedupHits  int64 `json:"dedup_hits"`
	Drops      int64 `json:"drops"`
	RateShed   int64 `json:"rate_shed,omitempty"`
	Reconnects int64 `json:"reconnects"`
}

// Health summarizes the node for operators: overall status plus
// per-source detail. Status is "ok" when every source is connecting,
// healthy, or finished (a finite replay ending is its normal
// completion, not an outage), "degraded" when any source is backing
// off, and "critical" when a source is dead.
type Health struct {
	Status  string         `json:"status"`
	Sources []SourceStatus `json:"sources"`
}

// Health reports the current health summary.
func (n *Node) Health() Health {
	n.mu.Lock()
	types := make(map[string]string, len(n.sources))
	for name, e := range n.sources {
		types[name] = e.spec.Type
	}
	n.mu.Unlock()
	h := Health{Status: "ok"}
	for _, src := range n.sup.Snapshot().Sources {
		h.Sources = append(h.Sources, SourceStatus{
			Name:       src.Name,
			Type:       types[src.Name],
			State:      src.State,
			Events:     src.Events,
			Batches:    src.Batches,
			DedupHits:  src.DedupHits,
			Drops:      src.Drops,
			RateShed:   src.RateShed,
			Reconnects: src.Reconnects,
		})
		switch src.State {
		case ingest.StateDegraded.String():
			if h.Status == "ok" {
				h.Status = "degraded"
			}
		case ingest.StateDead.String():
			h.Status = "critical"
		}
	}
	return h
}

// WriteMetrics renders the node's Prometheus-style text metrics — the
// same body GET /metrics serves. Node-wide families keep their
// single-tenant names (per-tenant mitigation queues merge into the one
// unlabeled family); each tenant additionally gets artemis_tenant_*
// counters labeled with its name.
func (n *Node) WriteMetrics(w io.Writer) {
	n.mu.Lock()
	tenants := n.orderedTenantsLocked()
	table := n.table
	n.mu.Unlock()

	n.sup.Snapshot().WriteProm(w)
	n.pl.Snapshot().WriteProm(w)
	if n.rec != nil {
		n.rec.Snapshot().WriteProm(w)
	}
	var mq stats.MitigationQueueSnapshot
	alerts, dedup := 0, 0
	var failures int64
	var legit, hijacked, unknown int
	now := n.now()
	for i, ts := range tenants {
		if i == 0 {
			mq = ts.svc.Mitigation.Snapshot()
		} else {
			mq = mq.Merge(ts.svc.Mitigation.Snapshot())
		}
		alerts += ts.svc.Detector.AlertCount()
		dedup += ts.svc.Detector.DedupSize()
		failures += int64(ts.ctrl.Failures())
		snap := ts.svc.Monitor.Snapshot(now)
		legit += snap.LegitVPs
		hijacked += snap.HijackedVPs
		unknown += snap.UnknownVPs
	}
	mq.WriteProm(w)
	fmt.Fprintf(w, "artemis_alerts_total %d\n", alerts)
	fmt.Fprintf(w, "artemis_alert_dedup_size %d\n", dedup)
	fmt.Fprintf(w, "artemis_controller_failed_actions_total %d\n", failures)
	fmt.Fprintf(w, "artemis_monitor_legit_vps %d\n", legit)
	fmt.Fprintf(w, "artemis_monitor_hijacked_vps %d\n", hijacked)
	fmt.Fprintf(w, "artemis_monitor_unknown_vps %d\n", unknown)
	fmt.Fprintf(w, "artemis_auth_failures_total %d\n", n.authFailures.Load())
	if n.rib != nil {
		n.rib.Snapshot().WriteProm(w)
	}
	if tb := n.roas.Load(); tb != nil {
		nf, valid, invalid := tb.VerdictCounts()
		fmt.Fprintf(w, "artemis_rpki_roas %d\n", tb.Len())
		fmt.Fprintf(w, "artemis_rpki_verdicts_total{verdict=\"valid\"} %d\n", valid)
		fmt.Fprintf(w, "artemis_rpki_verdicts_total{verdict=\"invalid\"} %d\n", invalid)
		fmt.Fprintf(w, "artemis_rpki_verdicts_total{verdict=\"unknown\"} %d\n", nf)
	}
	for _, ts := range tenants {
		tsn := stats.TenantSnapshot{
			Name:                ts.name,
			Alerts:              int64(ts.svc.Detector.AlertCount()),
			MitigationRateDrops: ts.svc.MitigationRateDrops(),
		}
		if rt := table.Runtime(ts.name); rt != nil {
			tsn.Events = rt.Events()
			tsn.QuotaDrops = rt.QuotaDrops()
		}
		tsn.WriteProm(w)
	}
}

// RouteObservation is one observed routing change for Inject — the
// bring-your-own-feed path for embedders whose monitoring infrastructure
// is not one of the built-in transports.
type RouteObservation struct {
	// Source/Collector label the observation's origin (defaults:
	// "embedded"/"embedded").
	Source    string `json:"source,omitempty"`
	Collector string `json:"collector,omitempty"`
	// VantagePoint is the AS whose routing view changed.
	VantagePoint uint32 `json:"vantage_point"`
	// Withdraw marks a route removal; otherwise an announcement.
	Withdraw bool   `json:"withdraw,omitempty"`
	Prefix   string `json:"prefix"`
	// Path is the AS path as seen from the vantage point (first element
	// the vantage point, last the origin). Empty for withdrawals.
	Path []uint32 `json:"path,omitempty"`
}

// Inject feeds observations straight into the detection pipeline,
// bypassing the ingest supervisor (no cross-source dedup). Observations
// are stamped with the node clock and fan out to every tenant whose
// space they match. The pipeline copies the batch during Submit, so
// Inject builds it in pooled storage and recycles it before returning —
// a steady inject loop performs no per-call allocations
// (docs/PERFORMANCE.md).
func (n *Node) Inject(obs ...RouteObservation) error {
	batch := n.injectPool.Get()
	defer batch.Release()
	for _, o := range obs {
		p, err := prefix.Parse(o.Prefix)
		if err != nil {
			return fmt.Errorf("artemis: bad prefix %q: %v", o.Prefix, err)
		}
		ev := feedtypes.Event{
			Source:       o.Source,
			Collector:    o.Collector,
			VantagePoint: bgp.ASN(o.VantagePoint),
			Prefix:       p,
			SeenAt:       n.now(),
			EmittedAt:    n.now(),
		}
		if ev.Source == "" {
			ev.Source = "embedded"
		}
		if ev.Collector == "" {
			ev.Collector = "embedded"
		}
		if o.Withdraw {
			ev.Kind = feedtypes.Withdraw
		} else {
			ev.Kind = feedtypes.Announce
			path := batch.NewPath(len(o.Path))
			for j, a := range o.Path {
				path[j] = bgp.ASN(a)
			}
			ev.Path = path
		}
		batch.Append(ev)
	}
	n.pl.Submit(batch.Events)
	if n.rib != nil {
		n.rib.Apply(batch.Events)
	}
	return nil
}

// injectorAdapter lowers the public string-typed RouteInjector to the
// controller's typed southbound.
type injectorAdapter struct{ inj RouteInjector }

func (a injectorAdapter) AnnounceRoute(p prefix.Prefix) error { return a.inj.AnnounceRoute(p.String()) }
func (a injectorAdapter) WithdrawRoute(p prefix.Prefix) error { return a.inj.WithdrawRoute(p.String()) }

// noopInjector is the detection-only southbound.
type noopInjector struct{}

func (noopInjector) AnnounceRoute(prefix.Prefix) error { return nil }
func (noopInjector) WithdrawRoute(prefix.Prefix) error { return nil }
