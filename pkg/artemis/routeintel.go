package artemis

import (
	"context"
	"fmt"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/prefix"
	"artemis/internal/rib"
	"artemis/internal/rpki"
)

// ErrRIBDisabled is returned by Lookup when the node has no route table
// (the rib: config block is not enabled).
var ErrRIBDisabled = fmt.Errorf("artemis: route table not enabled (set rib: in the config)")

// setupRouteIntel loads the node's route-intelligence state from cfg:
// the AS-name registry, the ROA table (file or URL fetch) and the route
// table with its optional full-dump bootstrap. Called once from New,
// before tenant stacks are built — their core configs embed the ROA
// table snapshot.
func (n *Node) setupRouteIntel(cfg *Config) error {
	if cfg.ASNames.Path != "" {
		names, err := rib.LoadASNames(cfg.ASNames.Path)
		if err != nil {
			return fmt.Errorf("artemis: asnames: %w", err)
		}
		n.asNames = names
		n.opts.logf("artemis: asnames: %d registry entries", names.Len())
	}
	switch {
	case cfg.RPKI.Path != "":
		tb, err := rpki.LoadFile(cfg.RPKI.Path)
		if err != nil {
			return fmt.Errorf("artemis: rpki: %w", err)
		}
		n.roas.Store(tb)
		n.opts.logf("artemis: rpki: %d ROAs loaded", tb.Len())
	case cfg.RPKI.URL != "":
		tb, err := rpki.Fetch(cfg.RPKI.URL, 0)
		if err != nil {
			return fmt.Errorf("artemis: rpki: %w", err)
		}
		n.roas.Store(tb)
		n.opts.logf("artemis: rpki: %d ROAs fetched", tb.Len())
	}
	if cfg.RIB.Enabled || cfg.RIB.Path != "" {
		n.rib = rib.New()
		if cfg.RIB.Path != "" {
			st, err := rib.LoadFile(cfg.RIB.Path, n.rib)
			if err != nil {
				return fmt.Errorf("artemis: rib bootstrap: %w", err)
			}
			n.ribLoad = st
			n.opts.logf("artemis: rib bootstrap: %s", st)
		}
	}
	return nil
}

// refreshRPKILoop re-fetches the ROA export every interval and swaps the
// new table into every tenant's config at a pipeline barrier. A failed
// fetch keeps the previous table and retries next tick.
func (n *Node) refreshRPKILoop(ctx context.Context, url string, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-n.drained:
			return
		case <-t.C:
			tb, err := rpki.Fetch(url, 0)
			if err != nil {
				n.opts.logf("artemis: rpki refresh: %v", err)
				continue
			}
			n.setROATable(tb)
		}
	}
}

// setROATable installs a new ROA table: the pointer swaps for future
// tenant construction, and every live tenant reconfigures to a config
// snapshot carrying it — each swap an atomic pipeline barrier, so the
// serial/sharded equivalence argument is untouched by refreshes.
func (n *Node) setROATable(tb *rpki.Table) {
	n.roas.Store(tb)
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, name := range n.order {
		ts := n.tenants[name]
		ccfg := ts.svc.CurrentConfig().Clone()
		ccfg.RPKI = tb
		if err := ts.svc.Reconfigure(ccfg); err != nil {
			n.opts.logf("artemis: rpki refresh: tenant %s: %v", name, err)
		}
	}
	n.opts.logf("artemis: rpki table refreshed (%d ROAs)", tb.Len())
}

// enrichAlert stamps the offending origin's registry name and locale
// onto an alert, when an AS-name registry is configured.
func (n *Node) enrichAlert(a *Alert) {
	if n.asNames == nil {
		return
	}
	if info, ok := n.asNames.Lookup(bgp.ASN(a.Origin)); ok {
		a.OriginName, a.OriginLocale = info.Name, info.Locale
	}
}

// LookupResult is one glass-style route lookup answer: the best route
// the node's table holds for the longest prefix covering the query.
type LookupResult struct {
	// Query is the canonicalized query; Matched the longest-match table
	// entry that answered it.
	Query   string `json:"query"`
	Matched string `json:"matched"`
	// Origin is the best route's originating AS, named when an AS-name
	// registry is configured.
	Origin       uint32 `json:"origin"`
	OriginName   string `json:"origin_name,omitempty"`
	OriginLocale string `json:"origin_locale,omitempty"`
	// Path is the best route's AS path as seen from VantagePoint.
	Path         []uint32 `json:"path"`
	VantagePoint uint32   `json:"vantage_point"`
	// Candidates counts the table's routes for the matched prefix (one
	// per vantage point carrying it).
	Candidates int `json:"candidates"`
	// RPKI is the origin-validation verdict for (matched, origin) when a
	// ROA table is configured: "valid", "invalid" or "unknown".
	RPKI string `json:"rpki,omitempty"`
}

// Lookup resolves a prefix — or a bare address, taken as a host route —
// against the node's route table, longest match. ErrRIBDisabled when the
// rib: block is not enabled; ok false when nothing covers the query.
func (n *Node) Lookup(query string) (LookupResult, bool, error) {
	if n.rib == nil {
		return LookupResult{}, false, ErrRIBDisabled
	}
	p, err := prefix.Parse(query)
	if err != nil {
		a, aerr := prefix.ParseAddr(query)
		if aerr != nil {
			return LookupResult{}, false, fmt.Errorf("artemis: bad lookup query %q: %v", query, err)
		}
		bits := 32
		if a.Is6() {
			bits = 128
		}
		p = prefix.New(a, bits)
	}
	r, ok := n.rib.Lookup(p)
	if !ok {
		return LookupResult{Query: p.String()}, false, nil
	}
	out := LookupResult{
		Query:        p.String(),
		Matched:      r.Matched.String(),
		Origin:       uint32(r.Origin),
		VantagePoint: uint32(r.VantagePoint),
		Candidates:   r.Candidates,
		Path:         make([]uint32, len(r.Path)),
	}
	for i, asn := range r.Path {
		out.Path[i] = uint32(asn)
	}
	if n.asNames != nil {
		if info, found := n.asNames.Lookup(r.Origin); found {
			out.OriginName, out.OriginLocale = info.Name, info.Locale
		}
	}
	if tb := n.roas.Load(); tb != nil {
		out.RPKI = tb.Validate(r.Matched, r.Origin).String()
	}
	return out, true, nil
}

// ASInfo is the glass-style per-AS answer: registry identity plus how
// much of the node's table the AS currently originates.
type ASInfo struct {
	ASN    uint32 `json:"asn"`
	Name   string `json:"name,omitempty"`
	Locale string `json:"locale,omitempty"`
	// PrefixesV4/V6 count table prefixes whose best route originates at
	// this AS (zero when the rib: block is not enabled).
	PrefixesV4 int64 `json:"prefixes_v4"`
	PrefixesV6 int64 `json:"prefixes_v6"`
}

// ASInfo reports what the node knows about an AS. known is false when
// neither the registry nor the route table has anything on it.
func (n *Node) ASInfo(asn uint32) (ASInfo, bool) {
	out := ASInfo{ASN: asn}
	known := false
	if n.asNames != nil {
		if info, found := n.asNames.Lookup(bgp.ASN(asn)); found {
			out.Name, out.Locale = info.Name, info.Locale
			known = true
		}
	}
	if n.rib != nil {
		out.PrefixesV4, out.PrefixesV6 = n.rib.OriginCounts(bgp.ASN(asn))
		if out.PrefixesV4+out.PrefixesV6 > 0 {
			known = true
		}
	}
	return out, known
}

// RIBEnabled reports whether the node maintains a route table.
func (n *Node) RIBEnabled() bool { return n.rib != nil }

// RIBStats snapshots the route table's size, origin and movement
// counters (zero value when the table is not enabled).
func (n *Node) RIBStats() rib.Stats {
	if n.rib == nil {
		return rib.Stats{}
	}
	return n.rib.Snapshot()
}

// RIBBootstrap reports the startup full-dump load's statistics (zero
// value when no rib: path was configured).
func (n *Node) RIBBootstrap() rib.LoadStats { return n.ribLoad }
