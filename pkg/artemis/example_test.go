package artemis_test

import (
	"fmt"

	"artemis/pkg/artemis"
)

// Example embeds ARTEMIS in-process: declare the owned space, subscribe
// to typed alert events, feed an observed routing change in (here via
// Inject — production embedders declare network sources in the config or
// bring their own feed), and react to the detection. Mitigation is left
// manual, so the embedding application decides the response.
func Example() {
	cfg := &artemis.Config{
		Prefixes:   []string{"192.0.2.0/24"},
		Origins:    []uint32{64496},
		Mitigation: artemis.MitigationConfig{Manual: true},
	}
	node, err := artemis.New(cfg, artemis.WithLogf(func(string, ...any) {}))
	if err != nil {
		panic(err)
	}
	defer node.Drain()

	alerts := node.Subscribe(artemis.KindAlert, 8)

	// A vantage point sees a more-specific slice of the owned space
	// announced by AS 64666 — a sub-prefix hijack.
	node.Inject(artemis.RouteObservation{
		VantagePoint: 64512,
		Prefix:       "192.0.2.128/25",
		Path:         []uint32{64512, 64500, 64666},
	})

	ev := <-alerts.C
	fmt.Printf("%s hijack of %s (owned %s) by AS%d\n",
		ev.Alert.Type, ev.Alert.Prefix, ev.Alert.Owned, ev.Alert.Origin)
	// Output: sub-prefix hijack of 192.0.2.128/25 (owned 192.0.2.0/24) by AS64666
}
