package artemis_test

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"artemis/internal/bgp"
	"artemis/internal/bgp/bmp"
	"artemis/internal/prefix"
	"artemis/pkg/artemis"
)

// bmpPeer is the one monitored session the sim exporter replays. The
// zero timestamp makes the station stamp events with the node clock,
// as a live deployment would.
func bmpPeer() bmp.PerPeerHeader {
	return bmp.PerPeerHeader{Addr: prefix.MustParseAddr("192.0.2.10"), AS: 65010, BGPID: 0x0a000001}
}

func bmpSessionUp() *bmp.PeerUp {
	return &bmp.PeerUp{
		Peer:       bmpPeer(),
		LocalAddr:  prefix.MustParseAddr("192.0.2.1"),
		LocalPort:  179,
		RemotePort: 30000,
		SentOpen:   bgp.NewOpen(64512, 90, prefix.MustParseAddr("192.0.2.1")),
		RecvOpen:   bgp.NewOpen(65010, 90, prefix.MustParseAddr("192.0.2.99")),
	}
}

func bmpUpdate(path []bgp.ASN, prefixes ...string) *bmp.RouteMonitoring {
	u := &bgp.Update{
		Attrs: []bgp.PathAttr{
			&bgp.OriginAttr{Value: bgp.OriginIGP},
			bgp.NewASPath(path),
			&bgp.NextHopAttr{Addr: prefix.MustParseAddr("192.0.2.1")},
		},
	}
	for _, p := range prefixes {
		u.NLRI = append(u.NLRI, prefix.MustParse(p))
	}
	return &bmp.RouteMonitoring{Peer: bmpPeer(), Update: u}
}

// runNode starts a node and returns a stop function that drains it.
func runNode(t *testing.T, node *artemis.Node) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- node.Run(ctx) }()
	return func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Run did not drain")
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRecordReplayRoundTrip is the interchange tentpole's acceptance
// property, end to end through the public facade: live sim traffic
// arrives over BMP and is detected, mitigated and recorded; replaying
// the archive at 1x and at 16x reproduces the live run — byte-identical
// alert history (detection runs on preserved event time) and identical
// mitigation decisions — and a completed replay reports terminal-but-
// healthy, never critical. Peer Down on the live session surfaces as a
// health transition.
func TestRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	exp, err := bmp.NewExporter("127.0.0.1:0", "rtr-live", bgp.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	exp.PeerUp(bmpSessionUp())

	// --- live phase: BMP feed, recorder on ---
	liveInj := &stringInjector{}
	cfg := &artemis.Config{
		Prefixes:   []string{"10.0.0.0/23"},
		Origins:    []uint32{61000},
		Mitigation: artemis.MitigationConfig{ConfigDelay: artemis.Duration(time.Millisecond)},
		Sources:    []artemis.SourceSpec{{Type: artemis.SourceBMP, Addr: exp.Addr()}},
		Record:     artemis.RecordConfig{Path: filepath.Join(dir, "cap")},
	}
	live, err := artemis.New(cfg, quiet(), artemis.WithRouteInjector(liveInj))
	if err != nil {
		t.Fatal(err)
	}
	healthSub := live.Subscribe(artemis.KindHealth, 64)
	stopLive := runNode(t, live)
	waitCond(t, "bmp source healthy", func() bool {
		h := live.Health()
		return len(h.Sources) == 1 && h.Sources[0].State == "healthy"
	})

	// The incident: a benign announcement, a sub-prefix hijack, and an
	// exact-prefix origin hijack — two distinct incidents to detect.
	exp.Publish(bmpUpdate([]bgp.ASN{65010, 3356, 61000}, "10.0.0.0/23"))
	exp.Publish(bmpUpdate([]bgp.ASN{65010, 666}, "10.0.0.0/24"))
	exp.Publish(bmpUpdate([]bgp.ASN{65010, 3356, 666}, "10.0.0.0/23"))
	waitCond(t, "live alerts+mitigations", func() bool {
		return len(live.Alerts()) == 2 && len(live.Mitigations()) == 2
	})

	// Losing the only monitored peer must surface on health: the source
	// leaves healthy (it is blind), observable as a degraded transition.
	exp.PeerDown(&bmp.PeerDown{Peer: bmpPeer(), Reason: bmp.PeerDownRemoteNoNotify})
	sawDegraded := false
	deadline := time.After(5 * time.Second)
	for !sawDegraded {
		select {
		case ev := <-healthSub.C:
			if ev.Kind == artemis.KindHealth && ev.SourceHealth.To == "degraded" {
				sawDegraded = true
			}
		case <-deadline:
			t.Fatal("no degraded health transition after peer down")
		}
	}
	stopLive()
	liveAlerts, liveMits := live.Alerts(), live.Mitigations()
	if liveAlerts[0].Type != "sub-prefix" || liveAlerts[0].Prefix != "10.0.0.0/24" ||
		liveAlerts[1].Type != "exact-origin" || liveAlerts[1].Origin != 666 {
		t.Fatalf("live alerts: %+v", liveAlerts)
	}
	if rs, ok := live.RecordStatus(); !ok || rs.Events != 3 || rs.Dropped != 0 {
		t.Fatalf("record status: %+v ok=%v", rs, ok)
	}

	// --- replay phase: same policy, archive as the only source ---
	glob := filepath.Join(dir, "cap-*.evlog")
	replayRun := func(speed float64) ([]artemis.Alert, []artemis.Mitigation) {
		inj := &stringInjector{}
		rcfg := &artemis.Config{
			Prefixes:   []string{"10.0.0.0/23"},
			Origins:    []uint32{61000},
			Mitigation: artemis.MitigationConfig{ConfigDelay: artemis.Duration(time.Millisecond)},
			Sources:    []artemis.SourceSpec{{Type: artemis.SourceReplay, Path: glob, Speed: speed}},
		}
		// The constant clock makes the wall-time-stamped mitigation
		// trigger times comparable across replay speeds; detection time
		// comes from the archive's event time either way.
		node, err := artemis.New(rcfg, quiet(),
			artemis.WithRouteInjector(inj), artemis.WithNow(func() time.Duration { return 0 }))
		if err != nil {
			t.Fatal(err)
		}
		stop := runNode(t, node)
		// Bugfix regression: a completed replay is terminal-but-healthy.
		// The source must settle in "finished" with overall status "ok" —
		// never critical, never a reconnect/backoff loop.
		waitCond(t, "replay finished", func() bool {
			h := node.Health()
			return len(h.Sources) == 1 && h.Sources[0].State == "finished"
		})
		h := node.Health()
		if h.Status != "ok" {
			t.Fatalf("health after finished replay = %q, want ok (%+v)", h.Status, h)
		}
		if h.Sources[0].Reconnects != 0 {
			t.Fatalf("finished replay reconnected %d times, want 0", h.Sources[0].Reconnects)
		}
		waitCond(t, "replay mitigations", func() bool { return len(node.Mitigations()) == 2 })
		stop()
		return node.Alerts(), node.Mitigations()
	}
	a1, m1 := replayRun(1)
	a16, m16 := replayRun(16)

	// 1x vs 16x: the whole history is byte-identical — event time, not
	// replay pacing, drives every clock that reaches the records.
	if mustJSON(t, a1) != mustJSON(t, a16) {
		t.Fatalf("alert history differs across replay speed:\n1x:  %s\n16x: %s", mustJSON(t, a1), mustJSON(t, a16))
	}
	if mustJSON(t, m1) != mustJSON(t, m16) {
		t.Fatalf("mitigation history differs across replay speed:\n1x:  %s\n16x: %s", mustJSON(t, m1), mustJSON(t, m16))
	}

	// Replay vs live: alerts are byte-identical (DetectedAt is the
	// recorded emission time). Mitigation trigger times are wall-clock on
	// the live node, so compare with them normalized out.
	if mustJSON(t, liveAlerts) != mustJSON(t, a1) {
		t.Fatalf("replayed alerts differ from live:\nlive:   %s\nreplay: %s", mustJSON(t, liveAlerts), mustJSON(t, a1))
	}
	norm := func(ms []artemis.Mitigation) []artemis.Mitigation {
		out := append([]artemis.Mitigation(nil), ms...)
		for i := range out {
			out[i].TriggeredAt = 0
		}
		return out
	}
	if mustJSON(t, norm(liveMits)) != mustJSON(t, norm(m1)) {
		t.Fatalf("replayed mitigations differ from live:\nlive:   %s\nreplay: %s",
			mustJSON(t, norm(liveMits)), mustJSON(t, norm(m1)))
	}
}
